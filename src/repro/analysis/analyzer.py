"""The top-level driver: PHP files in, bug reports (or "verified") out.

Mirrors the paper's Figure 3 workflow: per entry page, run the
string-taint analysis (phase 1), then the policy-conformance checks
(phase 2), and aggregate into a :class:`ProjectReport` with the same
shape as a Table 1 row.  With ``audit=True`` each page additionally
runs the soundness audit (:mod:`repro.analysis.audit`): every hotspot
verdict is stamped with a confidence level and the report carries the
deduplicated diagnostics for unmodeled or widened constructs.
"""

from __future__ import annotations

import re
import time
from pathlib import Path

from .absdom import GrammarBuilder
from .audit import AuditTrail, audit_page
from .policy import check_hotspot
from .reports import HotspotReport, ProjectReport
from .stringtaint import StringTaintAnalysis


def analyze_page(
    project_root: str | Path, entry: str | Path, audit: AuditTrail | None = None
) -> tuple[list[HotspotReport], StringTaintAnalysis]:
    """Analyze one top-level page; returns its hotspot reports."""
    analysis = StringTaintAnalysis(project_root, audit=audit)
    result = analysis.analyze_file(entry)
    reports = [check_hotspot(result.grammar, spot) for spot in result.hotspots]
    return reports, analysis


def audit_entry(project_root: str | Path, entry: str | Path):
    """Analyze one page with the soundness audit attached.

    Returns ``(hotspot_reports, analysis_result, audit_report)``; every
    hotspot report is stamped with the page's confidence level.
    """
    trail = AuditTrail()
    analysis = StringTaintAnalysis(project_root, audit=trail)
    result = analysis.analyze_file(entry)
    reports = [check_hotspot(result.grammar, spot) for spot in result.hotspots]
    page_audit = audit_page(result)
    for report in reports:
        report.confidence = page_audit.confidence
    return reports, result, page_audit


_PHP_OPEN = re.compile(r"<\?(?:php\b|=)?")
_DEFINED_GUARD = re.compile(r"if\s*\(\s*!\s*defined\s*\(", re.IGNORECASE)


def _leading_code(text: str) -> str:
    """The first PHP code in ``text``, past the open tag, whitespace and
    comments (``//``, ``#``, ``/* */``)."""
    match = _PHP_OPEN.search(text)
    if match is None:
        return ""
    code = text[match.end() :]
    while True:
        code = code.lstrip()
        if code.startswith("//") or code.startswith("#"):
            newline = code.find("\n")
            if newline == -1:
                return ""
            code = code[newline + 1 :]
        elif code.startswith("/*"):
            end = code.find("*/")
            if end == -1:
                return ""
            code = code[end + 2 :]
        else:
            return code


def has_include_guard(path: Path) -> bool:
    """True if the file opens with an ``if (!defined(...))`` guard — the
    classic marker of an include-only library file (it dies unless some
    constant was defined by the including page)."""
    try:
        head = path.read_text(errors="replace")[:4096]
    except OSError:
        return False
    return bool(_DEFINED_GUARD.match(_leading_code(head)))


def entry_pages(project_root: str | Path) -> list[Path]:
    """Top-level pages of a web application: the .php files that are not
    obviously include-only libraries.

    Each page is a separate ``main`` (paper §5.3); library files are
    analyzed as they are included.  The heuristic — include-only files
    live in ``includes/``/``lib/``-style directories or start with an
    ``if (!defined(...))`` guard — matches how the corpus (and the real
    applications it mirrors) is laid out.
    """
    root = Path(project_root)
    pages = []
    for path in sorted(root.rglob("*.php")):
        rel = path.relative_to(root)
        library_markers = (
            "includes", "include", "lib", "libs", "languages", "handlers",
            "cache", "templates",
        )
        if any(
            marker in part
            for part in rel.parts[:-1]
            for marker in library_markers
        ):
            continue
        if has_include_guard(path):
            continue
        pages.append(path)
    return pages


def analyze_project(
    project_root: str | Path, name: str | None = None, audit: bool = False
) -> ProjectReport:
    """Analyze a whole application: every entry page, one report."""
    root = Path(project_root)
    report = ProjectReport(name=name or root.name)

    php_files = list(root.rglob("*.php"))
    report.files = len(php_files)
    report.lines = sum(
        len(path.read_text().splitlines()) for path in php_files
    )

    total_nonterminals = 0
    total_productions = 0
    string_seconds = 0.0
    check_seconds = 0.0

    # shared across pages: parsed ASTs and the directory-layout scan
    # (the paper's §5.3 memoization suggestion)
    from repro.php.includes import IncludeResolver

    parse_cache: dict = {}
    resolver = IncludeResolver(root)
    seen_diagnostics: set = set()

    for page in entry_pages(root):
        started = time.perf_counter()
        trail = AuditTrail() if audit else None
        analysis = StringTaintAnalysis(
            root, parse_cache=parse_cache, resolver=resolver, audit=trail
        )
        result = analysis.analyze_file(page)
        string_seconds += time.perf_counter() - started
        for error in result.parse_errors:
            if error not in report.parse_errors:
                report.parse_errors.append(error)

        started = time.perf_counter()
        page_hotspots = []
        for spot in result.hotspots:
            scope = result.grammar.subgrammar(spot.query.nt)
            total_nonterminals += len(scope.productions)
            total_productions += scope.num_productions()
            page_hotspots.append(check_hotspot(result.grammar, spot))
        check_seconds += time.perf_counter() - started

        if audit:
            page_audit = audit_page(result)
            # a hotspot's verdict is only as trustworthy as the weakest
            # construct on its page's include closure
            for spot_report in page_hotspots:
                spot_report.confidence = page_audit.confidence
            for diagnostic in page_audit.diagnostics:
                if diagnostic.key not in seen_diagnostics:
                    seen_diagnostics.add(diagnostic.key)
                    report.diagnostics.append(diagnostic)
        report.hotspots.extend(page_hotspots)

    report.diagnostics.sort(key=lambda d: (d.file, d.line, d.kind, d.name))
    report.grammar_nonterminals = total_nonterminals
    report.grammar_productions = total_productions
    report.string_analysis_seconds = string_seconds
    report.check_seconds = check_seconds
    return report
