"""The top-level driver: PHP files in, bug reports (or "verified") out.

Mirrors the paper's Figure 3 workflow: per entry page, run the
string-taint analysis (phase 1), then the policy-conformance checks
(phase 2), and aggregate into a :class:`ProjectReport` with the same
shape as a Table 1 row.
"""

from __future__ import annotations

import time
from pathlib import Path

from .absdom import GrammarBuilder
from .policy import check_hotspot
from .reports import HotspotReport, ProjectReport
from .stringtaint import StringTaintAnalysis


def analyze_page(
    project_root: str | Path, entry: str | Path
) -> tuple[list[HotspotReport], StringTaintAnalysis]:
    """Analyze one top-level page; returns its hotspot reports."""
    analysis = StringTaintAnalysis(project_root)
    result = analysis.analyze_file(entry)
    reports = [check_hotspot(result.grammar, spot) for spot in result.hotspots]
    return reports, analysis


def entry_pages(project_root: str | Path) -> list[Path]:
    """Top-level pages of a web application: the .php files that are not
    obviously include-only libraries.

    Each page is a separate ``main`` (paper §5.3); library files are
    analyzed as they are included.  The heuristic — include-only files
    live in ``includes/``/``lib/``-style directories or start with an
    ``if (!defined(...))`` guard — matches how the corpus (and the real
    applications it mirrors) is laid out.
    """
    root = Path(project_root)
    pages = []
    for path in sorted(root.rglob("*.php")):
        rel = path.relative_to(root)
        library_markers = (
            "includes", "include", "lib", "libs", "languages", "handlers",
            "cache", "templates",
        )
        if any(
            marker in part
            for part in rel.parts[:-1]
            for marker in library_markers
        ):
            continue
        pages.append(path)
    return pages


def analyze_project(
    project_root: str | Path, name: str | None = None
) -> ProjectReport:
    """Analyze a whole application: every entry page, one report."""
    root = Path(project_root)
    report = ProjectReport(name=name or root.name)

    php_files = list(root.rglob("*.php"))
    report.files = len(php_files)
    report.lines = sum(
        len(path.read_text().splitlines()) for path in php_files
    )

    total_nonterminals = 0
    total_productions = 0
    string_seconds = 0.0
    check_seconds = 0.0

    # shared across pages: parsed ASTs and the directory-layout scan
    # (the paper's §5.3 memoization suggestion)
    from repro.php.includes import IncludeResolver

    parse_cache: dict = {}
    resolver = IncludeResolver(root)

    for page in entry_pages(root):
        started = time.perf_counter()
        analysis = StringTaintAnalysis(
            root, parse_cache=parse_cache, resolver=resolver
        )
        result = analysis.analyze_file(page)
        string_seconds += time.perf_counter() - started
        report.parse_errors.extend(result.parse_errors)

        started = time.perf_counter()
        for spot in result.hotspots:
            scope = result.grammar.subgrammar(spot.query.nt)
            total_nonterminals += len(scope.productions)
            total_productions += scope.num_productions()
            report.hotspots.append(check_hotspot(result.grammar, spot))
        check_seconds += time.perf_counter() - started

    report.grammar_nonterminals = total_nonterminals
    report.grammar_productions = total_productions
    report.string_analysis_seconds = string_seconds
    report.check_seconds = check_seconds
    return report
