"""The top-level driver: PHP files in, bug reports (or "verified") out.

Mirrors the paper's Figure 3 workflow: per entry page, run the
string-taint analysis (phase 1), then the policy-conformance checks
(phase 2), and aggregate into a :class:`ProjectReport` with the same
shape as a Table 1 row.  With ``audit=True`` each page additionally
runs the soundness audit (:mod:`repro.analysis.audit`): every hotspot
verdict is stamped with a confidence level and the report carries the
deduplicated diagnostics for unmodeled or widened constructs.

Pages are independent ``main``\\ s (paper §5.3), which makes the driver
embarrassingly parallel: :func:`run_pages` fans work out to the
analysis farm (:mod:`repro.farm` — persistent work-stealing workers, a
parallel include/parse pre-pass, and cross-worker memo sharing) when
``jobs > 1`` and merges the per-page :class:`PageResult` records back
**in page order**, so the aggregate report is deterministic —
byte-identical to a serial run — regardless of worker scheduling.
``jobs=1`` keeps the exact single-process path (shared parse cache and
include resolver across pages).  An optional on-disk cache
(:mod:`repro.analysis.diskcache`) makes repeat runs over an unchanged
corpus near-instant.
"""

from __future__ import annotations

import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.timeline import TIMELINE
from repro.obs.metrics import PERF
from repro.php.includes import IncludeResolver
from repro.obs.trace import TRACE

from .audit import AuditReport, AuditTrail, audit_page
from .diskcache import DiskCache, project_state_hash
from .policy import check_hotspot
from .reports import HotspotReport, ProjectReport
from .stringtaint import StringTaintAnalysis


def _check_spot(grammar, spot, policies) -> HotspotReport:
    """Phase-2 dispatch: SQL hotspots keep the classic cascade path
    (byte-identical output); policy-recorded hotspots go through their
    owning :class:`~repro.analysis.policies.SinkPolicy`."""
    kind = getattr(spot, "kind", "sql")
    if policies is None or kind == "sql":
        return check_hotspot(grammar, spot)
    return policies.policy_for(kind).check(grammar, spot)


def analyze_page(
    project_root: str | Path, entry: str | Path, audit: AuditTrail | None = None
) -> tuple[list[HotspotReport], StringTaintAnalysis]:
    """Analyze one top-level page; returns its hotspot reports."""
    analysis = StringTaintAnalysis(project_root, audit=audit)
    result = analysis.analyze_file(entry)
    reports = [check_hotspot(result.grammar, spot) for spot in result.hotspots]
    return reports, analysis


def audit_entry(project_root: str | Path, entry: str | Path):
    """Analyze one page with the soundness audit attached.

    Returns ``(hotspot_reports, analysis_result, audit_report)``; every
    hotspot report is stamped with the page's confidence level.
    """
    trail = AuditTrail()
    analysis = StringTaintAnalysis(project_root, audit=trail)
    result = analysis.analyze_file(entry)
    reports = [check_hotspot(result.grammar, spot) for spot in result.hotspots]
    page_audit = audit_page(result)
    for report in reports:
        report.confidence = page_audit.confidence
    return reports, result, page_audit


_PHP_OPEN = re.compile(r"<\?(?:php\b|=)?")
_DEFINED_GUARD = re.compile(r"if\s*\(\s*!\s*defined\s*\(", re.IGNORECASE)


def _leading_code(text: str) -> str:
    """The first PHP code in ``text``, past the open tag, whitespace and
    comments (``//``, ``#``, ``/* */``)."""
    match = _PHP_OPEN.search(text)
    if match is None:
        return ""
    code = text[match.end() :]
    while True:
        code = code.lstrip()
        if code.startswith("//") or code.startswith("#"):
            newline = code.find("\n")
            if newline == -1:
                return ""
            code = code[newline + 1 :]
        elif code.startswith("/*"):
            end = code.find("*/")
            if end == -1:
                return ""
            code = code[end + 2 :]
        else:
            return code


def has_include_guard(path: Path) -> bool:
    """True if the file opens with an ``if (!defined(...))`` guard — the
    classic marker of an include-only library file (it dies unless some
    constant was defined by the including page)."""
    try:
        head = path.read_text(errors="replace")[:4096]
    except OSError:
        return False
    return bool(_DEFINED_GUARD.match(_leading_code(head)))


def entry_pages(
    project_root: str | Path, php_files: list[Path] | None = None
) -> list[Path]:
    """Top-level pages of a web application: the .php files that are not
    obviously include-only libraries.

    Each page is a separate ``main`` (paper §5.3); library files are
    analyzed as they are included.  The heuristic — include-only files
    live in ``includes/``/``lib/``-style directories or start with an
    ``if (!defined(...))`` guard — matches how the corpus (and the real
    applications it mirrors) is laid out.

    ``php_files`` lets the caller share one directory scan between the
    file census and the page listing (:func:`analyze_project` passes its
    own ``rglob`` result instead of walking the tree twice).
    """
    root = Path(project_root)
    if php_files is None:
        php_files = sorted(root.rglob("*.php"))
    pages = []
    for path in php_files:
        rel = path.relative_to(root)
        library_markers = (
            "includes", "include", "lib", "libs", "languages", "handlers",
            "cache", "templates",
        )
        if any(
            marker in part
            for part in rel.parts[:-1]
            for marker in library_markers
        ):
            continue
        if has_include_guard(path):
            continue
        pages.append(path)
    return pages


@dataclass
class PageResult:
    """Everything one page's analysis produces, in picklable form.

    This is the unit shipped back from parallel workers and stored in the
    on-disk page cache, so it must stay free of live analysis state
    (grammars, ASTs, environments).
    """

    page: str
    reports: list[HotspotReport] = field(default_factory=list)
    parse_errors: list[str] = field(default_factory=list)
    audit: AuditReport | None = None
    #: grammar-size tallies over the page's hotspot subgrammars
    nonterminals: int = 0
    productions: int = 0
    string_seconds: float = 0.0
    check_seconds: float = 0.0
    #: True when served from the on-disk page cache (timings are the
    #: original run's, not this run's)
    from_cache: bool = False
    #: worker-side perf delta (parallel runs only; folded into the
    #: driver's recorder and cleared by :func:`run_pages`)
    perf: dict | None = None
    #: this page's span tree (:meth:`repro.obs.trace.Span.to_dict` form) when
    #: ``--trace`` is on; recorded wherever the page actually ran and
    #: reassembled by the driver in page order, so a parallel run's trace
    #: has the same tree shape as a serial run's
    trace: dict | None = None
    #: this page's phase-tagged timeline capture (``--profile=timeline``):
    #: the :meth:`repro.obs.timeline._PageCapture.payload` dict, tagged
    #: with the recording process id so the driver can assign worker
    #: lanes; ``None`` when timeline recording is off
    timeline: dict | None = None
    #: the page's file-dependency closure, as sorted project-relative
    #: POSIX paths: every file whose *content* can influence this page's
    #: grammar (entry page + transitive include closure, parse failures
    #: and include-once-skipped alternatives included).  Persisted with
    #: the result so the analysis server can rebuild its dependency
    #: graph from cached entries (:mod:`repro.server.depgraph`)
    deps: list[str] = field(default_factory=list)
    #: True when the page's verdicts also depend on the project *layout*
    #: (a dynamic or unresolved include): file additions/removals must
    #: invalidate it even when no file in ``deps`` changed
    layout_sensitive: bool = False

    @property
    def verified(self) -> bool:
        return all(report.verified for report in self.reports)


def _relative_deps(dep_files, project_root: Path) -> list[str]:
    """Sorted project-relative POSIX form of a page's dependency closure
    (paths outside the root — possible with symlinked includes — stay
    absolute so they still compare equal across runs)."""
    rels = set()
    for dep in dep_files:
        path = Path(dep)
        try:
            rels.add(path.relative_to(project_root).as_posix())
        except ValueError:
            rels.add(path.as_posix())
    return sorted(rels)


def _phase1_page(
    project_root: Path,
    page: str | Path,
    audit: bool,
    parse_cache: dict,
    resolver: IncludeResolver,
    disk_cache: DiskCache | None,
    policies=None,
):
    """Phase 1 (string-taint abstract interpretation) of one page.

    Returns ``(analysis_result, string_seconds)`` — the live result the
    phase-2 checks consume.  Split out of :func:`_analyze_one_page` so
    the farm can ship the resulting ``(grammar, hotspots)`` pair to
    other workers as stealable cascade tasks."""
    started = time.perf_counter()
    trail = AuditTrail() if audit else None
    analysis = StringTaintAnalysis(
        project_root,
        parse_cache=parse_cache,
        resolver=resolver,
        audit=trail,
        disk_cache=disk_cache,
        policies=policies,
    )
    with TRACE.span("phase1") as phase1_span:
        with PERF.timer("phase1.string_analysis"), TIMELINE.phase("absdom"):
            result = analysis.analyze_file(page)
        phase1_span.set("hotspots", len(result.hotspots))
        phase1_span.set(
            "grammar_nonterminals", len(result.grammar.productions)
        )
        phase1_span.set("grammar_productions", result.grammar.num_productions())
    PERF.incr("pages.analyzed")
    return result, time.perf_counter() - started


def _check_one(grammar, spot, policies):
    """One phase-2 cascade: ``(report, scope_nonterminals, scope_productions)``.

    The unit the farm steals: a function of the (picklable) grammar and
    hotspot alone, so the verdict is identical wherever it runs."""
    scope = grammar.subgrammar(spot.query.nt)
    nonterminals = len(scope.productions)
    productions = scope.num_productions()
    PERF.gauge("grammar.hotspot_productions.max", productions)
    return _check_spot(grammar, spot, policies), nonterminals, productions


def _audit_result(result, audit: bool) -> AuditReport | None:
    if not audit:
        return None
    with TRACE.span("audit"), TIMELINE.phase("audit"):
        return audit_page(result)


def _analyze_one_page(
    project_root: Path,
    page: str | Path,
    audit: bool,
    parse_cache: dict,
    resolver: IncludeResolver,
    disk_cache: DiskCache | None,
    policies=None,
) -> PageResult:
    """The two-phase analysis of a single entry page."""
    result, string_seconds = _phase1_page(
        project_root, page, audit, parse_cache, resolver, disk_cache, policies
    )

    started = time.perf_counter()
    reports: list[HotspotReport] = []
    nonterminals = 0
    productions = 0
    with TRACE.span("phase2") as phase2_span:
        with PERF.timer("phase2.checks"), TIMELINE.phase("phase2"):
            for spot in result.hotspots:
                report, scope_nts, scope_prods = _check_one(
                    result.grammar, spot, policies
                )
                nonterminals += scope_nts
                productions += scope_prods
                reports.append(report)
        phase2_span.set("hotspots", len(reports))
    check_seconds = time.perf_counter() - started

    page_audit = _audit_result(result, audit)
    if page_audit is not None:
        # a hotspot's verdict is only as trustworthy as the weakest
        # construct on its page's include closure
        for report in reports:
            report.confidence = page_audit.confidence
    return PageResult(
        page=str(page),
        reports=reports,
        parse_errors=list(result.parse_errors),
        audit=page_audit,
        nonterminals=nonterminals,
        productions=productions,
        string_seconds=string_seconds,
        check_seconds=check_seconds,
        deps=_relative_deps(result.dep_files, Path(project_root)),
        layout_sensitive=result.layout_sensitive,
    )


def _page_result(
    project_root: Path,
    page: str | Path,
    audit: bool,
    parse_cache: dict,
    resolver: IncludeResolver | None,
    disk_cache: DiskCache | None,
    project_state: str | None,
    policies=None,
) -> PageResult:
    """One page, consulting the on-disk page cache when available.

    Always the page-span boundary: the span tree for this page is
    recorded here (a fresh root span whether the result was analyzed or
    served from disk) and shipped in ``PageResult.trace``; likewise the
    page's timeline capture (``PageResult.timeline``)."""
    with TIMELINE.page(str(page)) as timeline_capture:
        with TRACE.capture("page", page=str(page)) as page_span:
            result = _page_result_inner(
                project_root, page, audit, parse_cache, resolver, disk_cache,
                project_state, page_span, policies,
            )
    result.trace = page_span.to_dict() if TRACE.enabled else None
    result.timeline = timeline_capture.payload()
    return result


def _page_result_inner(
    project_root: Path,
    page: str | Path,
    audit: bool,
    parse_cache: dict,
    resolver: IncludeResolver | None,
    disk_cache: DiskCache | None,
    project_state: str | None,
    page_span,
    policies=None,
) -> PageResult:
    key = None
    if disk_cache is not None and project_state is not None:
        try:
            rel = str(Path(page).relative_to(project_root))
        except ValueError:
            rel = str(page)
        key = DiskCache.page_key(
            project_state,
            str(project_root),
            rel,
            audit,
            policy_digest=policies.digest() if policies is not None else "",
        )
        with TIMELINE.phase("cache.page_load"):
            cached = disk_cache.load("page", key)
        if isinstance(cached, PageResult):
            # every hotspot whose cascade we skipped is phase-2 work
            # the cache paid for once and amortizes forever
            PERF.incr("policy.checks_avoided", len(cached.reports))
            PERF.incr("pages.from_disk_cache")
            cached.from_cache = True
            cached.perf = None
            page_span.set("from_cache", True)
            return cached
    if resolver is None:
        resolver = IncludeResolver(project_root)
    result = _analyze_one_page(
        project_root, page, audit, parse_cache, resolver, disk_cache,
        policies=policies,
    )
    if disk_cache is not None and key is not None:
        disk_cache.store("page", key, result)
    return result


# -- parallel workers ---------------------------------------------------------


def _warm_worker_caches(policies) -> None:
    """Pre-build the policy automata a worker will need (warm start).

    Without this, the first page each worker analyzes pays the cold
    NFA→determinize→minimize cost for every danger automaton — once per
    worker process, since none of the ``lru_cache`` tables travel across
    ``fork``/``spawn``.  All constructors are process-cached, so warming
    is idempotent and costs nothing when the caches are already hot."""
    from . import quotes
    from .policies import policy_instance

    with PERF.timer("worker.warm_start"):
        # the SQL confinement cascade (the default when no policy config
        # is given) draws on the quotes automata
        quotes.odd_unescaped_quotes()
        quotes.has_unescaped_quote()
        quotes.markers_inside_string_literals()
        quotes.numeric_literals()
        quotes.non_confinable_substrings()
        if policies is not None:
            for pid in policies.enabled:
                policy_instance(pid).warm()


def resolve_jobs(jobs: int | None, pages: int | None = None) -> int:
    """``None``/``0`` means "use every core"; never more jobs than pages."""
    if not jobs or jobs < 1:
        jobs = os.cpu_count() or 1
    if pages is not None:
        jobs = max(1, min(jobs, pages))
    return jobs


def run_pages(
    project_root: str | Path,
    pages: list[str | Path],
    audit: bool = False,
    jobs: int | None = 1,
    cache_dir: str | Path | None = None,
    cache_max_mb: float | None = None,
    parse_cache: dict | None = None,
    policies=None,
    profile: bool = False,
    farm=None,
    epoch: int = 0,
) -> list[PageResult]:
    """Analyze ``pages`` and return their results **in input order**.

    ``jobs=1`` is today's exact serial path: pages run in-process and
    share one parse cache and include resolver.  ``jobs>1`` fans work
    out to the analysis farm (:mod:`repro.farm`): a pool of persistent
    work-stealing workers, an include/parse pre-pass warming a shared
    AST memo, and cross-worker sharing of verdict and FST-image memos
    through a content-addressed memo service.  Because a page's analysis
    is a pure function of the project tree — and every shared memo entry
    is keyed by content — the per-page results are identical either way,
    and merging in input order makes the whole run order-insensitive to
    worker completion.

    ``cache_max_mb`` caps the on-disk cache (LRU-by-atime pruning, see
    :meth:`DiskCache.prune`).  ``parse_cache`` lets a long-lived caller
    (the analysis server) keep parsed ASTs warm across calls; it is only
    consulted on the serial path — parallel workers hold their own — and
    the caller is responsible for evicting entries for changed files.

    ``policies`` is an optional
    :class:`~repro.analysis.policies.PolicyConfig`; ``None`` runs the
    default SQL-confinement analysis exactly as before.  The config
    travels to parallel workers (it is a frozen picklable dataclass) and
    its digest salts the disk-cache page key, so results computed under
    one config are never replayed under another.

    ``profile=True`` turns on the worker-side IPC accounting (pickled
    page-result bytes and serialization time); timeline recording
    additionally follows the driver's ``TIMELINE.enabled`` into the
    workers.  Neither changes any analysis output (DESIGN 5i).

    ``farm`` lets a long-lived caller (the analysis daemon) pass its own
    :class:`repro.farm.AnalysisFarm`, amortizing worker start-up across
    calls and projects; ``epoch`` is that caller's invalidation counter
    for this project (workers discard per-project state from older
    epochs).  Without ``farm``, a parallel run owns a private farm for
    the duration of the call.
    """
    root = Path(project_root)
    disk_cache = DiskCache(cache_dir, max_mb=cache_max_mb) if cache_dir else None
    project_state = None
    if disk_cache is not None:
        with PERF.timer("disk.project_state_hash"), TIMELINE.phase(
            "project-state-hash"
        ):
            project_state = project_state_hash(root)
    jobs = resolve_jobs(jobs, len(pages))
    if jobs <= 1 and farm is None:
        if parse_cache is None:
            parse_cache = {}
        resolver = IncludeResolver(root)
        return [
            _page_result(
                root, page, audit, parse_cache, resolver, disk_cache,
                project_state, policies,
            )
            for page in pages
        ]
    from repro.farm.driver import AnalysisFarm

    owned = None
    if farm is None:
        owned = farm = AnalysisFarm(jobs)
    try:
        with PERF.timer("parallel.fanout"):
            results = farm.map_pages(
                root,
                [str(page) for page in pages],
                audit=audit,
                cache_dir=str(cache_dir) if cache_dir else None,
                cache_max_mb=cache_max_mb,
                project_state=project_state,
                policies=policies,
                profile=profile,
                epoch=epoch,
                disk_cache=disk_cache,
            )
    finally:
        if owned is not None:
            owned.shutdown()
    return results


def analyze_project(
    project_root: str | Path,
    name: str | None = None,
    audit: bool = False,
    jobs: int | None = 1,
    cache_dir: str | Path | None = None,
    cache_max_mb: float | None = None,
) -> ProjectReport:
    """Analyze a whole application: every entry page, one report.

    The report is deterministic in ``jobs``: parallel runs merge page
    results in page order, so hotspot ordering, diagnostic dedup, and
    summed tallies match the serial run exactly.
    """
    root = Path(project_root)
    report = ProjectReport(name=name or root.name)

    # one directory scan feeds both the file census and the page listing
    with PERF.timer("scan"):
        php_files = sorted(root.rglob("*.php"))
        report.files = len(php_files)
        report.lines = sum(
            len(path.read_text(errors="replace").splitlines())
            for path in php_files
        )
        pages = entry_pages(root, php_files=php_files)

    results = run_pages(
        root, pages, audit=audit, jobs=jobs, cache_dir=cache_dir,
        cache_max_mb=cache_max_mb,
    )

    seen_diagnostics: set = set()
    for page_result in results:
        for error in page_result.parse_errors:
            if error not in report.parse_errors:
                report.parse_errors.append(error)
        report.grammar_nonterminals += page_result.nonterminals
        report.grammar_productions += page_result.productions
        report.string_analysis_seconds += page_result.string_seconds
        report.check_seconds += page_result.check_seconds
        if page_result.audit is not None:
            for diagnostic in page_result.audit.diagnostics:
                if diagnostic.key not in seen_diagnostics:
                    seen_diagnostics.add(diagnostic.key)
                    report.diagnostics.append(diagnostic)
        report.hotspots.extend(page_result.reports)

    report.diagnostics.sort(key=lambda d: (d.file, d.line, d.kind, d.name))
    return report
