"""Classification of untrusted sources and query sinks (paper §2.2).

*Direct* sources hand the user's bytes straight to the program (GET/POST
parameters, cookies, raw request metadata).  *Indirect* sources carry
data that untrusted users may have influenced earlier (database results,
sessions).  The distinction only affects how a report is categorized —
both are tracked the same way.
"""

from __future__ import annotations

from repro.lang.grammar import DIRECT, INDIRECT

#: superglobal arrays → taint label of their contents
SUPERGLOBAL_LABELS = {
    "_GET": DIRECT,
    "_POST": DIRECT,
    "_REQUEST": DIRECT,
    "_COOKIE": DIRECT,
    "_SERVER": DIRECT,
    "_FILES": DIRECT,
    "HTTP_GET_VARS": DIRECT,
    "HTTP_POST_VARS": DIRECT,
    "HTTP_COOKIE_VARS": DIRECT,
    "_SESSION": INDIRECT,
    "HTTP_SESSION_VARS": INDIRECT,
}

#: builtin functions whose return value is database data (INDIRECT), with
#: the shape of the result ("array" or "scalar")
FETCH_FUNCTIONS = {
    "mysql_fetch_array": "array",
    "mysql_fetch_assoc": "array",
    "mysql_fetch_row": "array",
    "mysql_fetch_object": "object",
    "mysql_result": "scalar",
    "mysqli_fetch_array": "array",
    "mysqli_fetch_assoc": "array",
    "mysqli_fetch_row": "array",
    "mysqli_fetch_object": "object",
    "pg_fetch_array": "array",
    "pg_fetch_assoc": "array",
    "pg_fetch_row": "array",
    "sqlite_fetch_array": "array",
}

#: method names treated as fetches when the receiver class is unknown
FETCH_METHOD_NAMES = frozenset(
    """
    fetch fetch_array fetch_assoc fetch_row fetch_object fetchrow
    fetch_fields get_row get_results sql_fetchrow sql_fetch_assoc
    """.split()
)

#: builtin query sinks: function name → index of the SQL argument
QUERY_FUNCTIONS = {
    "mysql_query": 0,
    "mysql_unbuffered_query": 0,
    "mysql_db_query": 1,
    "mysqli_query": 1,
    "mysqli_real_query": 1,
    "mysqli_multi_query": 1,
    "pg_query": 0,
    "pg_send_query": 0,
    "sqlite_query": 0,
}

#: method names treated as query sinks (SQL argument is argument 0)
QUERY_METHOD_NAMES = frozenset(
    """
    query sql_query execute_query unbuffered_query dbquery db_query
    """.split()
)

#: shell-command sinks (policy ``shell``): function name → command
#: argument index.  PHP's backtick operator is the same sink but the
#: parser subset has no backtick node, so it is out of scope (documented
#: in README "Policies").
SHELL_FUNCTIONS = {
    "exec": 0,
    "system": 0,
    "passthru": 0,
    "shell_exec": 0,
    "popen": 0,
    "proc_open": 0,
}

#: dynamic-code sinks (policy ``eval``): function name → code argument
#: index.  ``preg_replace`` with a literal ``/e`` pattern is handled
#: separately (the replacement argument becomes the sink).
EVAL_FUNCTIONS = {
    "eval": 0,
    "assert": 0,
    "create_function": 1,
}

#: filesystem sinks (policy ``path``): function name → path argument
#: index.  ``include``/``require`` are language constructs and recorded
#: by the interpreter directly.
PATH_FUNCTIONS = {
    "fopen": 0,
    "readfile": 0,
    "file_get_contents": 0,
    "file": 0,
    "unlink": 0,
    "opendir": 0,
    "show_source": 0,
    "highlight_file": 0,
}


def superglobal_label(name: str) -> str | None:
    return SUPERGLOBAL_LABELS.get(name)


def is_fetch_function(name: str) -> str | None:
    """The result shape if ``name`` is a DB fetch builtin, else None."""
    return FETCH_FUNCTIONS.get(name)


def is_fetch_method(name: str) -> bool:
    return name.lower() in FETCH_METHOD_NAMES


def query_argument_index(name: str) -> int | None:
    """The SQL-string argument position if ``name`` is a query builtin."""
    return QUERY_FUNCTIONS.get(name)


def is_query_method(name: str) -> bool:
    return name.lower() in QUERY_METHOD_NAMES
