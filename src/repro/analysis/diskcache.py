"""On-disk content-addressed caches (the CLI's ``--cache-dir``).

Two stores, both keyed by content hashes salted with
:data:`ANALYZER_CACHE_VERSION` (bumping the version orphans every old
entry, so semantics changes can never replay stale results):

* ``ast/`` — parsed :class:`repro.php.ast.File` trees (or the parse
  error), keyed by the SHA-256 of the file's bytes.  Survives edits to
  *other* files: only the changed file reparses.
* ``page/`` — whole per-page analysis results
  (:class:`repro.analysis.analyzer.PageResult`), keyed by the page path
  **plus a hash of every resolver-visible file in the project**.  A
  page's result depends not just on its own include closure but on the
  project layout itself (dynamic include resolution intersects the
  include argument's language with the set of on-disk paths, paper §4),
  so any file change conservatively invalidates all page entries —
  repeat runs over an unchanged corpus are near-instant, and a changed
  corpus can never serve a stale verdict.

Entries are pickles written atomically (tmp file + rename); a corrupt or
unreadable entry is treated as a miss, never an error.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
from pathlib import Path

from repro.obs.metrics import PERF

log = logging.getLogger(__name__)

#: Bump when an analysis-semantics change invalidates cached results
#: (on-disk ASTs / page reports keyed by content hash + this version).
#: "7": tokens and AST nodes carry byte spans for the remediation
#: engine — older span-less pickles must not be replayed.
ANALYZER_CACHE_VERSION = "7"

#: extensions the include resolver scans — part of the project state
RESOLVER_EXTENSIONS = (".php", ".inc", ".html", ".tpl")


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def project_state_hash(project_root: str | Path) -> str:
    """Hash of every resolver-visible file's (relative path, content).

    This is the conservative dependency key for per-page results: it
    changes when any file an analysis *could* observe changes — content
    of any include candidate, or the file layout the dynamic-include
    resolver treats as part of the specification.
    """
    root = Path(project_root)
    digest = hashlib.sha256(ANALYZER_CACHE_VERSION.encode())
    entries = []
    for dirpath, _dirnames, filenames in os.walk(root):
        for filename in filenames:
            if filename.endswith(RESOLVER_EXTENSIONS):
                path = Path(dirpath) / filename
                entries.append(path)
    for path in sorted(entries):
        rel = path.relative_to(root).as_posix()
        try:
            data = path.read_bytes()
        except OSError:
            data = b"<unreadable>"
        digest.update(rel.encode("utf-8", errors="replace"))
        digest.update(b"\0")
        digest.update(content_hash(data).encode())
        digest.update(b"\0")
    return digest.hexdigest()


class DiskCache:
    """A directory of pickled cache entries, organized by kind.

    ``max_mb`` (the CLI's ``--cache-max-mb``) caps the cache's total
    size: when the cap is exceeded the least-recently-*used* entries are
    pruned (LRU by atime — every hit refreshes the entry's atime
    explicitly, so the policy holds even on ``noatime`` mounts).  A
    long-lived analysis daemon can then keep one cache directory forever
    without it growing without bound.  The on-disk layout is unchanged
    from the uncapped cache — capped and uncapped runs share entries.
    """

    def __init__(self, cache_dir: str | Path, max_mb: float | None = None) -> None:
        self.root = Path(cache_dir)
        self.max_bytes = int(max_mb * 1024 * 1024) if max_mb else None
        self._stored_since_prune = 0
        for kind in ("ast", "page"):
            (self.root / kind).mkdir(parents=True, exist_ok=True)
        if self.max_bytes is not None:
            self.prune()

    def _path(self, kind: str, key: str) -> Path:
        return self.root / kind / f"{key}.pkl"

    def load(self, kind: str, key: str):
        """The stored object, or None on miss/corruption (counted)."""
        path = self._path(kind, key)
        try:
            with open(path, "rb") as handle:
                value = pickle.load(handle)
                try:
                    PERF.incr("disk.bytes_read", os.fstat(handle.fileno()).st_size)
                except OSError:
                    pass
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            PERF.incr(f"disk.{kind}.misses")
            log.debug("disk cache miss: %s/%s", kind, key[:16])
            return None
        try:
            # mark the entry recently-used for LRU pruning, even on
            # mounts where reads don't update atime
            os.utime(path)
        except OSError:
            pass
        PERF.incr(f"disk.{kind}.hits")
        log.debug("disk cache hit: %s/%s", kind, key[:16])
        return value

    def store(self, kind: str, key: str, value) -> None:
        path = self._path(kind, key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
                PERF.incr("disk.bytes_written", handle.tell())
            os.replace(tmp, path)
            PERF.incr(f"disk.{kind}.stores")
        except (OSError, pickle.PicklingError) as exc:
            PERF.incr(f"disk.{kind}.store_errors")
            log.warning("disk cache store failed for %s/%s: %s",
                        kind, key[:16], exc)
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
            return
        if self.max_bytes is not None:
            try:
                self._stored_since_prune += path.stat().st_size
            except OSError:
                pass
            # amortize the directory walk: prune after writing ~1/16 of
            # the cap (but at least 64 KiB) rather than on every store
            if self._stored_since_prune >= max(self.max_bytes // 16, 65536):
                self.prune()

    def prune(self) -> int:
        """Evict least-recently-used entries until the cache fits
        ``max_bytes``; returns how many entries were removed."""
        if self.max_bytes is None:
            return 0
        self._stored_since_prune = 0
        entries: list[tuple[float, int, Path]] = []
        total = 0
        for kind in ("ast", "page"):
            for path in (self.root / kind).glob("*.pkl"):
                try:
                    status = path.stat()
                except OSError:
                    continue
                entries.append((status.st_atime, status.st_size, path))
                total += status.st_size
        PERF.gauge("disk.total_bytes", total)
        if total <= self.max_bytes:
            return 0
        entries.sort(key=lambda entry: (entry[0], entry[2]))
        removed = 0
        for _atime, size, path in entries:
            if total <= self.max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            removed += 1
        if removed:
            PERF.incr("disk.evictions", removed)
            log.info(
                "disk cache pruned: %d entries evicted, %d bytes kept "
                "(cap %d)", removed, total, self.max_bytes,
            )
        return removed

    # -- key builders -------------------------------------------------------

    @staticmethod
    def ast_key(source_bytes: bytes, path: str) -> str:
        # the absolute path is part of the key because parsed trees (and
        # the diagnostics derived from them) embed it; two byte-identical
        # files at different locations are different cache entries
        digest = hashlib.sha256(ANALYZER_CACHE_VERSION.encode())
        digest.update(b"ast\0")
        digest.update(path.encode("utf-8", errors="replace"))
        digest.update(b"\0")
        digest.update(source_bytes)
        return digest.hexdigest()

    @staticmethod
    def page_key(
        project_state: str,
        root: str,
        rel_page: str,
        audit: bool,
        policy_digest: str = "",
    ) -> str:
        # ``root`` (absolute) is in the key for the same reason as above:
        # stored reports carry absolute file names
        digest = hashlib.sha256(ANALYZER_CACHE_VERSION.encode())
        digest.update(b"page\0")
        digest.update(project_state.encode())
        digest.update(b"\0")
        digest.update(root.encode("utf-8", errors="replace"))
        digest.update(b"\0")
        digest.update(rel_page.encode("utf-8", errors="replace"))
        digest.update(b"\0audit=1" if audit else b"\0audit=0")
        if policy_digest:
            # non-default policy configs key their own entries; the
            # default ("" digest) keeps the historical key unchanged
            digest.update(b"\0policy=")
            digest.update(policy_digest.encode())
        return digest.hexdigest()
