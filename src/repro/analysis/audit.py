"""The soundness audit: correlate inventory with the analysis run.

The string-taint analysis is sound *relative to its model* of PHP
(Theorem 3.4 assumes every construct on the analyzed path is one the
abstract interpreter understands).  This pass makes the gap auditable:

1. :func:`repro.php.features.inventory_file` statically classifies every
   construct in the page's include closure as modeled / widened /
   escaped;
2. the :class:`AuditTrail` — threaded through the interpreter, the
   builtin models, the :class:`~repro.analysis.absdom.GrammarBuilder`
   widening chokepoint, and the
   :class:`~repro.php.includes.IncludeResolver` — records what the run
   actually did: which builtins fell to a widening model, which grammar
   operands were widened for size, which dynamic includes resolved to
   how many files, where recursion was cut off;
3. :func:`audit_page` merges the two into deduplicated
   :class:`Diagnostic` records and a single confidence verdict for the
   page (``sound`` / ``sound-modulo-widening`` / ``unsound-caveats``).

The static inventory is authoritative for *escapes* (it sees code the
interpreter never reaches); the run-time trail is authoritative for
*widenings* (only the run knows whether ``str_replace`` had a literal or
a dynamic search pattern) and for dynamic-include resolution (a dynamic
include whose alternatives were all found and analyzed is merely
widened, not a hole).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.php import features
from repro.php.features import ESCAPED, MODELED, WIDENED

from .reports import SOUND, SOUND_MODULO_WIDENING, UNSOUND_CAVEATS

#: diagnostic severities: escapes void the soundness argument locally,
#: widenings only cost precision
SEVERITY_WARNING = "warning"  # escaped — a soundness caveat
SEVERITY_INFO = "info"        # widened — a precision caveat

_LOCATED_ERROR = re.compile(r"^(?P<file>[^:]+):(?P<line>\d+):\s*(?P<msg>.*)$")


@dataclass(frozen=True)
class Diagnostic:
    """One audit finding, pinned to a source location."""

    kind: str            # feature kind, or "widening" / "recursion" /
                         # "parse-error"
    classification: str  # features.WIDENED | features.ESCAPED
    severity: str        # SEVERITY_WARNING | SEVERITY_INFO
    file: str
    line: int
    name: str = ""       # function/builtin name, when there is one
    message: str = ""

    @property
    def key(self) -> tuple:
        """Deduplication key: one diagnostic per (site, kind, name)."""
        return (self.kind, self.file, self.line, self.name)

    def render(self) -> str:
        where = f"{self.file}:{self.line}" if self.file else "<project>"
        subject = f"{self.kind}({self.name})" if self.name else self.kind
        return (
            f"  {self.severity}: {where}: [{self.classification}] "
            f"{subject}: {self.message}"
        )

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "classification": self.classification,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "name": self.name,
            "message": self.message,
        }


class AuditTrail:
    """Run-time instrumentation collected during one page's analysis.

    The interpreter keeps ``location`` pointed at the statement being
    executed and ``call_context`` at the builtin call being modeled, so
    events recorded deep inside the grammar machinery (the
    ``GrammarBuilder.widen`` chokepoint has no idea what PHP line it
    serves) still land on a source location.
    """

    def __init__(self) -> None:
        self.location: tuple[str, int] = ("", 0)
        self.call_context: tuple[str, str, int] | None = None  # name, file, line
        #: (name, file, line) of builtins modeled by a widening handler
        self.builtin_widenings: list[tuple[str, str, int]] = []
        #: (hint-or-name, file, line) of GrammarBuilder.widen invocations
        self.grammar_widenings: list[tuple[str, str, int]] = []
        #: (name, file, line) of calls the interpreter fell through on
        self.unknown_calls: list[tuple[str, str, int]] = []
        #: (name, file, line) where the call-depth/recursion bound hit
        self.recursion_cutoffs: list[tuple[str, str, int]] = []
        #: include site → (was the argument a literal?, max #files resolved)
        self.includes: dict[tuple[str, int], tuple[bool, int]] = {}

    def _site(self) -> tuple[str, str, int]:
        if self.call_context is not None:
            return self.call_context
        file, line = self.location
        return ("", file, line)

    def record_builtin_widening(self, name: str) -> None:
        _, file, line = self._site()
        self.builtin_widenings.append((name, file, line))

    def record_widening(self, hint: str) -> None:
        name, file, line = self._site()
        self.grammar_widenings.append((name or hint, file, line))

    def record_unknown_call(self, name: str, file: str, line: int) -> None:
        self.unknown_calls.append((name, file, line))

    def record_recursion(self, name: str, file: str, line: int) -> None:
        self.recursion_cutoffs.append((name, file, line))

    def record_include(
        self, file: str, line: int, literal: bool, resolved: int
    ) -> None:
        previous = self.includes.get((file, line))
        if previous is not None:
            literal = literal or previous[0]
            resolved = max(resolved, previous[1])
        self.includes[(file, line)] = (literal, resolved)


@dataclass
class AuditReport:
    """The audit verdict for one page (= one include closure)."""

    page: str
    confidence: str = SOUND
    diagnostics: list[Diagnostic] = field(default_factory=list)
    modeled: int = 0   # constructs handled exactly
    widened: int = 0   # constructs over-approximated (sound)
    escaped: int = 0   # constructs outside the model (soundness holes)
    #: unmodeled builtin → occurrence count, for "what to model next"
    unmodeled_builtins: dict[str, int] = field(default_factory=dict)

    @property
    def escapes(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.classification == ESCAPED]

    @property
    def widenings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.classification == WIDENED]

    def render(self) -> str:
        lines = [
            f"audit {self.page}: {self.confidence} "
            f"(modeled={self.modeled} widened={self.widened} "
            f"escaped={self.escaped})"
        ]
        if self.unmodeled_builtins:
            total = sum(self.unmodeled_builtins.values())
            names = ", ".join(
                f"{name}×{count}" if count > 1 else name
                for name, count in sorted(self.unmodeled_builtins.items())
            )
            lines.append(f"  {total} call(s) to unmodeled builtins: {names}")
        lines.extend(d.render() for d in self.diagnostics)
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "page": self.page,
            "confidence": self.confidence,
            "modeled": self.modeled,
            "widened": self.widened,
            "escaped": self.escaped,
            "unmodeled_builtins": dict(self.unmodeled_builtins),
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }


def _feature_diagnostic(feat: features.Feature) -> Diagnostic:
    severity = SEVERITY_WARNING if feat.classification == ESCAPED else SEVERITY_INFO
    return Diagnostic(
        kind=feat.kind,
        classification=feat.classification,
        severity=severity,
        file=feat.file,
        line=feat.line,
        name=feat.name,
        message=feat.detail or feat.kind,
    )


def _parse_error_diagnostic(error: str) -> Diagnostic:
    match = _LOCATED_ERROR.match(error)
    file, line, message = (
        (match.group("file"), int(match.group("line")), match.group("msg"))
        if match
        else ("", 0, error)
    )
    return Diagnostic(
        kind="parse-error",
        classification=ESCAPED,
        severity=SEVERITY_WARNING,
        file=file,
        line=line,
        message=f"file not analyzed: {message}",
    )


def confidence_of(diagnostics: list[Diagnostic]) -> str:
    if any(d.classification == ESCAPED for d in diagnostics):
        return UNSOUND_CAVEATS
    if any(d.classification == WIDENED for d in diagnostics):
        return SOUND_MODULO_WIDENING
    return SOUND


def audit_page(result) -> AuditReport:
    """Audit one :class:`~repro.analysis.stringtaint.AnalysisResult`.

    ``result`` must come from an analysis run with an :class:`AuditTrail`
    attached (``result.audit_trail``); ``result.trees`` holds the parsed
    include closure.
    """
    trail: AuditTrail | None = result.audit_trail
    known = frozenset(result.known_functions)
    report = AuditReport(page=result.page)

    by_key: dict[tuple, Diagnostic] = {}

    def add(diag: Diagnostic) -> None:
        by_key.setdefault(diag.key, diag)

    # 1. static inventory over the include closure
    for tree in result.trees.values():
        for feat in features.inventory_file(tree, known):
            if feat.classification == MODELED:
                report.modeled += 1
                continue
            if (
                feat.kind == "dynamic-include"
                and trail is not None
                and trail.includes.get((feat.file, feat.line), (False, 0))[1] > 0
            ):
                # the resolver found every candidate file and the
                # interpreter analyzed each alternative: sound, merely
                # over-approximate (a path may be infeasible)
                resolved = trail.includes[(feat.file, feat.line)][1]
                feat = features.Feature(
                    kind=feat.kind,
                    classification=WIDENED,
                    file=feat.file,
                    line=feat.line,
                    name=feat.name,
                    detail=(
                        f"resolved to {resolved} candidate file(s); "
                        "all alternatives analyzed"
                    ),
                )
            if feat.kind == "unknown-builtin":
                report.unmodeled_builtins[feat.name] = (
                    report.unmodeled_builtins.get(feat.name, 0) + 1
                )
            add(_feature_diagnostic(feat))

    # names the static inventory already diagnosed, per site — the
    # interpreter's unknown-call fallthrough would re-report e.g. eval
    # under a coarser kind
    covered_sites = {(d.file, d.line, d.name) for d in by_key.values() if d.name}

    # 2. the run-time trail
    if trail is not None:
        for name, file, line in trail.builtin_widenings:
            add(
                Diagnostic(
                    kind="widened-builtin",
                    classification=WIDENED,
                    severity=SEVERITY_INFO,
                    file=file,
                    line=line,
                    name=name,
                    message="modeled by charset-closure widening",
                )
            )
        for name, file, line in trail.grammar_widenings:
            add(
                Diagnostic(
                    kind="widening",
                    classification=WIDENED,
                    severity=SEVERITY_INFO,
                    file=file,
                    line=line,
                    name=name,
                    message="operand widened to its charset closure",
                )
            )
        for name, file, line in trail.unknown_calls:
            if (file, line, name) in covered_sites:
                continue
            add(
                Diagnostic(
                    kind="unknown-builtin",
                    classification=ESCAPED,
                    severity=SEVERITY_WARNING,
                    file=file,
                    line=line,
                    name=name,
                    message="no model: side effects invisible to the analysis",
                )
            )
        for name, file, line in trail.recursion_cutoffs:
            add(
                Diagnostic(
                    kind="recursion",
                    classification=WIDENED,
                    severity=SEVERITY_INFO,
                    file=file,
                    line=line,
                    name=name,
                    message="call-depth bound reached; result widened to Σ*",
                )
            )
        for (file, line), (literal, resolved) in trail.includes.items():
            if not literal and resolved == 0:
                add(
                    Diagnostic(
                        kind="dynamic-include",
                        classification=ESCAPED,
                        severity=SEVERITY_WARNING,
                        file=file,
                        line=line,
                        message=(
                            "include path matched no project file: "
                            "included code is invisible"
                        ),
                    )
                )

    # 3. files the parser rejected are entirely outside the model
    for error in result.parse_errors:
        add(_parse_error_diagnostic(error))

    report.diagnostics = sorted(
        by_key.values(), key=lambda d: (d.file, d.line, d.kind, d.name)
    )
    report.widened = sum(
        1 for d in report.diagnostics if d.classification == WIDENED
    )
    report.escaped = sum(
        1 for d in report.diagnostics if d.classification == ESCAPED
    )
    report.confidence = confidence_of(report.diagnostics)
    return report
