"""Quote-parity automata for the policy checks (paper §3.2.1).

The paper expresses checks C1/C2 as Perl regexes over unescaped quotes;
we construct the equivalent automata directly from the underlying state
machine — states are (parity of unescaped quotes seen, pending
backslash) — and differential-test them against a reference Python
implementation.

An *unescaped quote* is a ``'`` not preceded by an unconsumed ``\\``.
The SQL convention of doubling (``''``) needs no special handling for
parity: two quotes flip twice.
"""

from __future__ import annotations

from functools import lru_cache

from repro.lang.charset import CharSet
from repro.lang.fsa import DFA

QUOTE = CharSet.of("'")
BACKSLASH = CharSet.of("\\")
OTHER = QUOTE.union(BACKSLASH).complement()

#: A reserved character standing for an abstracted nonterminal occurrence
#: (the paper's fresh terminal ``t_X``).  Private-use codepoint: cannot
#: occur in program literals that matter.
MARKER = "\ue000"
MARKER_CS = CharSet.of(MARKER)


def count_unescaped_quotes(text: str) -> int:
    """Reference implementation (used by tests and witness validation)."""
    count = 0
    escaped = False
    for char in text:
        if escaped:
            escaped = False
        elif char == "\\":
            escaped = True
        elif char == "'":
            count += 1
    return count


def _parity_machine(accept_odd: bool) -> DFA:
    """DFA over (parity, escaped); accepts by final parity."""
    dfa = DFA()
    states = {(p, e): dfa.new_state() for p in (0, 1) for e in (False, True)}
    dfa.start = states[(0, False)]
    for (p, e), src in states.items():
        if e:
            dfa.add_edge(src, CharSet.any_char(), states[(p, False)])
        else:
            dfa.add_edge(src, BACKSLASH, states[(p, True)])
            dfa.add_edge(src, QUOTE, states[(1 - p, False)])
            dfa.add_edge(src, QUOTE.union(BACKSLASH).complement(), states[(p, False)])
    target = 1 if accept_odd else 0
    dfa.accepts = {states[(target, e)] for e in (False, True)}
    return dfa


@lru_cache(maxsize=1)
def odd_unescaped_quotes() -> DFA:
    """Strings with an odd number of unescaped quotes — never confinable
    (check C1's violation language)."""
    return _parity_machine(accept_odd=True)


@lru_cache(maxsize=1)
def has_unescaped_quote() -> DFA:
    """Strings containing at least one unescaped quote (C2's violation
    language for string-literal-position nonterminals)."""
    dfa = DFA()
    # states: (seen_any, escaped) but once seen we can collapse
    clean = dfa.new_state()
    clean_esc = dfa.new_state()
    seen = dfa.new_state()
    dfa.start = clean
    dfa.accepts = {seen}
    dfa.add_edge(clean, BACKSLASH, clean_esc)
    dfa.add_edge(clean, QUOTE, seen)
    dfa.add_edge(clean, QUOTE.union(BACKSLASH).complement(), clean)
    dfa.add_edge(clean_esc, CharSet.any_char(), clean)
    dfa.add_edge(seen, CharSet.any_char(), seen)
    return dfa


@lru_cache(maxsize=1)
def markers_inside_string_literals() -> DFA:
    """Strings over Σ ∪ {MARKER} where every MARKER occurrence sits inside
    an open single-quoted literal (odd parity, not escape-pending).

    Containment of the hole-grammar in this language is the paper's
    second check: the labeled nonterminal occurs only in string-literal
    position.
    """
    dfa = DFA()
    states = {(p, e): dfa.new_state() for p in (0, 1) for e in (False, True)}
    dfa.start = states[(0, False)]
    dfa.accepts = set(states.values())
    other = QUOTE.union(BACKSLASH).union(MARKER_CS).complement()
    for (p, e), src in states.items():
        if e:
            # the escaped character: consumed literally (marker excluded —
            # an escaped marker would mean X's first char is escaped)
            dfa.add_edge(src, MARKER_CS.complement(), states[(p, False)])
        else:
            dfa.add_edge(src, BACKSLASH, states[(p, True)])
            dfa.add_edge(src, QUOTE, states[(1 - p, False)])
            dfa.add_edge(src, other, states[(p, False)])
            if p == 1:
                dfa.add_edge(src, MARKER_CS, src)
    return dfa


@lru_cache(maxsize=1)
def numeric_literals() -> DFA:
    """SQL numeric literals (check C3's safe language)."""
    from repro.lang.regex import full_match_language, parse_regex

    return full_match_language(parse_regex(r"-?[0-9]+(\.[0-9]+)?")).determinize()


@lru_cache(maxsize=1)
def non_confinable_substrings() -> DFA:
    """Strings containing a fragment that cannot be syntactically confined
    outside of quotes (check C4): statement separators, comment starts,
    and multi-statement keywords."""
    from repro.lang.fsa import NFA
    from repro.lang.regex import compile_pattern, parse_regex

    patterns = [
        r";",
        r"--",
        r"#",
        r"/\*",
        r"[dD][rR][oO][pP][ \t]",
        r"[dD][eE][lL][eE][tT][eE][ \t]",
        r"[iI][nN][sS][eE][rR][tT][ \t]",
        r"[uU][pP][dD][aA][tT][eE][ \t]",
        r"[uU][nN][iI][oO][nN][ \t]",
        r"[ \t][oO][rR][ \t]",
        r"[ \t][aA][nN][dD][ \t]",
        r"=",
    ]
    # One shared Σ*·(p₁|…|pₙ)·Σ* — per-pattern Σ* wings would make subset
    # construction track the powerset of already-matched patterns.
    core = NFA.nothing()
    for pattern in patterns:
        core = core.union(compile_pattern(parse_regex(pattern)))
    language = NFA.any_string().concat(core).concat(NFA.any_string())
    return language.determinize().minimize()
