"""Command-line interface: ``sqlciv <project-root> [entry.php …]``.

Mirrors the workflow of the paper's tool: point it at a PHP web
application, get either bug reports or "verified".

Pages are analyzed through :func:`repro.analysis.analyzer.run_pages`,
so ``--jobs N`` fans them out over worker processes and ``--cache-dir``
enables the on-disk result cache — neither changes any output or exit
code: results are merged in page order, so a parallel or cache-served
run renders byte-for-byte what a serial cold run renders.

Observability (see README "Observability"): ``--sarif FILE`` writes the
findings with their taint-chain codeFlows as SARIF 2.1.0, ``--trace
FILE`` records the per-page span tree as JSON lines, and ``--log-level``
controls the stderr diagnostics routed through :mod:`logging` — stdout
carries only the report (or the single ``--json`` document).

Exit codes:

* ``0`` — verified, and (when auditing) every page was fully modeled:
  the soundness theorem applies without caveats;
* ``1`` — at least one SQLCIV violation was reported;
* ``2`` — usage error (argparse);
* ``3`` — verified, but the audit found soundness caveats (``eval``,
  unresolved dynamic includes, unmodeled builtins, …): "no report" is
  conditional on those constructs being benign.  Only ``--audit`` /
  ``--json`` runs can exit 3.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from pathlib import Path

from repro.obs import trace
from repro.obs import timeline as obs_timeline
from repro.obs.timeline import TIMELINE
from repro.obs.metrics import PERF, render_table
from repro.obs.trace import TRACE

from .analyzer import entry_pages, run_pages
from .reports import SOUND, UNSOUND_CAVEATS, json_document
from .sarif import write_sarif

log = logging.getLogger(__name__)

#: ``--log-level`` vocabulary.  ``quiet`` still lets genuine errors out.
LOG_LEVELS = {
    "quiet": logging.ERROR,
    "info": logging.INFO,
    "debug": logging.DEBUG,
}

EXIT_VERIFIED = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2          # argparse's own convention
EXIT_CAVEATS = 3


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # server-mode subcommands ride on the same entry point: everything
    # else is the classic batch analyzer
    if argv and argv[0] == "serve":
        from repro.server.daemon import serve_main

        return serve_main(argv[1:])
    if argv and argv[0] == "client":
        from repro.server.client import client_main

        return client_main(argv[1:])
    if argv and argv[0] == "fuzz":
        from repro.oracle.fuzz import fuzz_main

        return fuzz_main(argv[1:])
    if argv and argv[0] == "fix":
        from repro.remediate.engine import fix_main

        return fix_main(argv[1:])
    if argv and argv[0] == "stats":
        from repro.obs.stats import stats_main

        return stats_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="sqlciv",
        description=(
            "Grammar-based static detection of SQL command injection "
            "vulnerabilities in PHP web applications "
            "(reproduction of Wassermann & Su, PLDI 2007).  "
            "`sqlciv serve` runs the persistent analysis daemon and "
            "`sqlciv client` talks to it (see README 'Server mode')."
        ),
    )
    parser.add_argument("root", help="project root directory")
    parser.add_argument(
        "pages",
        nargs="*",
        help="entry pages to analyze (default: every top-level .php page)",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true", help="show verified hotspots too"
    )
    parser.add_argument(
        "--xss",
        action="store_true",
        help="also check echo/print sinks for cross-site scripting",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help=(
            "run the soundness audit: flag every unmodeled or widened "
            "construct and attach a confidence level to each verdict"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document (implies --audit) instead of text",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=0,
        metavar="N",
        help=(
            "analyze N pages in parallel (default: one per CPU core); "
            "--jobs 1 runs everything in-process"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "cache parsed ASTs and per-page results in DIR, keyed by "
            "content hashes; repeat runs over an unchanged project are "
            "near-instant and always reproduce the uncached verdicts"
        ),
    )
    parser.add_argument(
        "--cache-max-mb",
        type=float,
        metavar="MB",
        help=(
            "cap the --cache-dir size; past the cap, least-recently-used "
            "entries are pruned (LRU by access time)"
        ),
    )
    parser.add_argument(
        "--profile",
        nargs="?",
        const="table",
        choices=("table", "timeline"),
        metavar="MODE",
        help=(
            "print a per-phase timing and cache-counter table to stderr "
            "(with --json, also embed it under a \"perf\" key).  "
            "--profile=timeline additionally records worker-attributed "
            "phase spans and writes them to --timeline-out; render them "
            "with `sqlciv stats timeline.json`"
        ),
    )
    parser.add_argument(
        "--timeline-out",
        metavar="FILE",
        default="timeline.json",
        help=(
            "where --profile=timeline writes its capture "
            "(default: timeline.json)"
        ),
    )
    parser.add_argument(
        "--policy-config",
        metavar="FILE",
        help=(
            "enable sink policies from a YAML config (see README "
            "'Policies'); without it only the classic SQL confinement "
            "policy runs, with byte-identical output"
        ),
    )
    parser.add_argument(
        "--sarif",
        metavar="FILE",
        help=(
            "write the violations as a SARIF 2.1.0 log to FILE, with each "
            "finding's taint chain rendered as a codeFlow"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help=(
            "record a span tree per page (parse, includes, phase 1, FST "
            "images, intersections, phase 2 checks) and write it as JSON "
            "lines to FILE; the tree shape is identical for serial, "
            "parallel, and cache-served runs"
        ),
    )
    parser.add_argument(
        "--log-level",
        choices=sorted(LOG_LEVELS),
        default="info",
        help=(
            "diagnostic verbosity on stderr (default: info); stdout carries "
            "only the report / --json document either way"
        ),
    )
    args = parser.parse_args(argv)

    logging.basicConfig(
        stream=sys.stderr,
        level=LOG_LEVELS[args.log_level],
        format="%(levelname)s %(name)s: %(message)s",
    )

    root = Path(args.root)
    if not root.is_dir():
        parser.error(f"{root} is not a directory")
    if args.jobs < 0:
        parser.error("--jobs must be >= 1 (or 0 for one per CPU core)")

    policies = None
    if args.policy_config:
        from .policies import PolicyConfigError, load_policy_config

        try:
            policies = load_policy_config(args.policy_config)
        except PolicyConfigError as exc:
            parser.error(f"--policy-config: {exc}")

    PERF.reset()
    TRACE.configure(bool(args.trace))
    TIMELINE.configure(args.profile == "timeline")

    if args.pages:
        pages = [root / page for page in args.pages]
    else:
        with TIMELINE.phase("scan"):
            pages = entry_pages(root)

    auditing = args.audit or args.json
    # analysis wall: page analysis only, excluding interpreter start-up
    # and rendering — the numerator/denominator of the page-throughput
    # speedups the perf harness reports (perf-block only, so recording
    # it never changes analysis output)
    with PERF.timer("run.pages_wall"):
        results = run_pages(
            root, pages, audit=auditing, jobs=args.jobs,
            cache_dir=args.cache_dir, cache_max_mb=args.cache_max_mb,
            policies=policies, profile=bool(args.profile),
        )

    any_violation = False
    any_escape = False
    if args.json:
        # the same document builder the analysis server replays from its
        # memo — shared so server-mode output is byte-identical (README
        # "Server mode")
        document = json_document(root, results)
        any_violation = not document["verified"]
        any_escape = document["confidence"] == UNSOUND_CAVEATS
        if args.profile:
            document["perf"] = PERF.snapshot()
        print(json.dumps(document, indent=2))

    for page_result in [] if args.json else results:
        reports = page_result.reports
        page_audit = page_result.audit
        if page_audit is not None:
            any_escape |= bool(page_audit.escapes)
        any_violation |= any(not r.verified for r in reports)

        for report in reports:
            if report.verified and not args.verbose:
                continue
            print(report.render())
            print()
        if args.xss:
            from .xss import analyze_page_xss

            for xss_report in analyze_page_xss(root, page_result.page):
                if xss_report.verified and not args.verbose:
                    continue
                status = "verified" if xss_report.verified else "XSS"
                print(f"echo {xss_report.file}:{xss_report.line}: {status}")
                for finding in xss_report.findings:
                    print("  " + finding.render().replace("\n", "\n  "))
                any_violation |= not xss_report.verified
        if page_audit is not None and (
            args.verbose or page_audit.confidence != SOUND
        ):
            print(page_audit.render())
            print()
        for error in page_result.parse_errors:
            log.warning("%s", error)

    if not args.json and not any_violation:
        if any_escape:
            print(
                "verified with caveats: no SQLCIV reports, but the audit "
                "found soundness holes (see diagnostics)"
            )
        else:
            print("verified: no SQLCIV reports")

    if args.sarif:
        write_sarif(args.sarif, root, results, policies=policies)
        log.info("SARIF log written to %s", args.sarif)
    if args.trace:
        trace.write_run(
            args.trace,
            [r.trace for r in results if r.trace is not None],
            attrs={"root": str(root), "jobs": args.jobs},
        )
        log.info("trace written to %s", args.trace)

    if args.profile == "timeline":
        timeline = obs_timeline.assemble(
            [r.timeline for r in results],
            TIMELINE.drain_driver_spans(),
            attrs={"root": str(root), "jobs": args.jobs},
            aux_payloads=TIMELINE.drain_adopted(),
        )
        obs_timeline.write_timeline(args.timeline_out, timeline)
        log.info(
            "timeline written to %s (render with `sqlciv stats %s`)",
            args.timeline_out, args.timeline_out,
        )
    if args.profile:
        print(render_table(PERF.snapshot()), file=sys.stderr)

    if any_violation:
        return EXIT_VIOLATIONS
    if auditing and any_escape:
        return EXIT_CAVEATS
    return EXIT_VERIFIED


if __name__ == "__main__":
    raise SystemExit(main())
