"""Command-line interface: ``sqlciv <project-root> [entry.php …]``.

Mirrors the workflow of the paper's tool: point it at a PHP web
application, get either bug reports or "verified".

Pages are analyzed through :func:`repro.analysis.analyzer.run_pages`,
so ``--jobs N`` fans them out over worker processes and ``--cache-dir``
enables the on-disk result cache — neither changes any output or exit
code: results are merged in page order, so a parallel or cache-served
run renders byte-for-byte what a serial cold run renders.

Exit codes:

* ``0`` — verified, and (when auditing) every page was fully modeled:
  the soundness theorem applies without caveats;
* ``1`` — at least one SQLCIV violation was reported;
* ``2`` — usage error (argparse);
* ``3`` — verified, but the audit found soundness caveats (``eval``,
  unresolved dynamic includes, unmodeled builtins, …): "no report" is
  conditional on those constructs being benign.  Only ``--audit`` /
  ``--json`` runs can exit 3.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.perf import PERF, render_table

from .analyzer import entry_pages, run_pages
from .reports import SOUND, SOUND_MODULO_WIDENING, UNSOUND_CAVEATS

EXIT_VERIFIED = 0
EXIT_VIOLATIONS = 1
EXIT_USAGE = 2          # argparse's own convention
EXIT_CAVEATS = 3


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sqlciv",
        description=(
            "Grammar-based static detection of SQL command injection "
            "vulnerabilities in PHP web applications "
            "(reproduction of Wassermann & Su, PLDI 2007)."
        ),
    )
    parser.add_argument("root", help="project root directory")
    parser.add_argument(
        "pages",
        nargs="*",
        help="entry pages to analyze (default: every top-level .php page)",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true", help="show verified hotspots too"
    )
    parser.add_argument(
        "--xss",
        action="store_true",
        help="also check echo/print sinks for cross-site scripting",
    )
    parser.add_argument(
        "--audit",
        action="store_true",
        help=(
            "run the soundness audit: flag every unmodeled or widened "
            "construct and attach a confidence level to each verdict"
        ),
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document (implies --audit) instead of text",
    )
    parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=0,
        metavar="N",
        help=(
            "analyze N pages in parallel (default: one per CPU core); "
            "--jobs 1 runs everything in-process"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help=(
            "cache parsed ASTs and per-page results in DIR, keyed by "
            "content hashes; repeat runs over an unchanged project are "
            "near-instant and always reproduce the uncached verdicts"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print a per-phase timing and cache-counter table to stderr "
            "(with --json, also embed it under a \"perf\" key)"
        ),
    )
    args = parser.parse_args(argv)

    root = Path(args.root)
    if not root.is_dir():
        parser.error(f"{root} is not a directory")
    if args.jobs < 0:
        parser.error("--jobs must be >= 1 (or 0 for one per CPU core)")

    if args.pages:
        pages = [root / page for page in args.pages]
    else:
        pages = entry_pages(root)

    PERF.reset()
    auditing = args.audit or args.json
    results = run_pages(
        root, pages, audit=auditing, jobs=args.jobs, cache_dir=args.cache_dir
    )

    any_violation = False
    any_escape = False
    pages_json: list[dict] = []
    for page_result in results:
        reports = page_result.reports
        page_audit = page_result.audit
        if page_audit is not None:
            any_escape |= bool(page_audit.escapes)
        any_violation |= any(not r.verified for r in reports)

        if args.json:
            pages_json.append(
                {
                    "page": page_result.page,
                    "verified": all(r.verified for r in reports),
                    "confidence": (
                        page_audit.confidence if page_audit else SOUND
                    ),
                    "hotspots": [r.as_dict() for r in reports],
                    "audit": page_audit.as_dict() if page_audit else None,
                    "parse_errors": list(page_result.parse_errors),
                }
            )
            continue

        for report in reports:
            if report.verified and not args.verbose:
                continue
            print(report.render())
            print()
        if args.xss:
            from .xss import analyze_page_xss

            for xss_report in analyze_page_xss(root, page_result.page):
                if xss_report.verified and not args.verbose:
                    continue
                status = "verified" if xss_report.verified else "XSS"
                print(f"echo {xss_report.file}:{xss_report.line}: {status}")
                for finding in xss_report.findings:
                    print("  " + finding.render().replace("\n", "\n  "))
                any_violation |= not xss_report.verified
        if page_audit is not None and (
            args.verbose or page_audit.confidence != SOUND
        ):
            print(page_audit.render())
            print()
        for error in page_result.parse_errors:
            print(f"warning: {error}", file=sys.stderr)

    if args.json:
        confidences = {p["confidence"] for p in pages_json}
        if any_escape:
            overall = UNSOUND_CAVEATS
        elif SOUND_MODULO_WIDENING in confidences:
            overall = SOUND_MODULO_WIDENING
        else:
            overall = SOUND
        document = {
            "root": str(root),
            "verified": not any_violation,
            "confidence": overall,
            "pages": pages_json,
        }
        if args.profile:
            document["perf"] = PERF.snapshot()
        print(json.dumps(document, indent=2))
    elif not any_violation:
        if any_escape:
            print(
                "verified with caveats: no SQLCIV reports, but the audit "
                "found soundness holes (see diagnostics)"
            )
        else:
            print("verified: no SQLCIV reports")

    if args.profile:
        print(render_table(PERF.snapshot()), file=sys.stderr)

    if any_violation:
        return EXIT_VIOLATIONS
    if auditing and any_escape:
        return EXIT_CAVEATS
    return EXIT_VERIFIED


if __name__ == "__main__":
    raise SystemExit(main())
