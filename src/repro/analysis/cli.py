"""Command-line interface: ``sqlciv <project-root> [entry.php …]``.

Mirrors the workflow of the paper's tool: point it at a PHP web
application, get either bug reports or "verified".
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analyzer import analyze_page, analyze_project, entry_pages


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sqlciv",
        description=(
            "Grammar-based static detection of SQL command injection "
            "vulnerabilities in PHP web applications "
            "(reproduction of Wassermann & Su, PLDI 2007)."
        ),
    )
    parser.add_argument("root", help="project root directory")
    parser.add_argument(
        "pages",
        nargs="*",
        help="entry pages to analyze (default: every top-level .php page)",
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true", help="show verified hotspots too"
    )
    parser.add_argument(
        "--xss",
        action="store_true",
        help="also check echo/print sinks for cross-site scripting",
    )
    args = parser.parse_args(argv)

    root = Path(args.root)
    if not root.is_dir():
        parser.error(f"{root} is not a directory")

    if args.pages:
        pages = [root / page for page in args.pages]
    else:
        pages = entry_pages(root)

    any_violation = False
    for page in pages:
        reports, analysis = analyze_page(root, page)
        for report in reports:
            if report.verified and not args.verbose:
                continue
            print(report.render())
            print()
        any_violation |= any(not r.verified for r in reports)
        if args.xss:
            from .xss import analyze_page_xss

            for xss_report in analyze_page_xss(root, page):
                if xss_report.verified and not args.verbose:
                    continue
                status = "verified" if xss_report.verified else "XSS"
                print(f"echo {xss_report.file}:{xss_report.line}: {status}")
                for finding in xss_report.findings:
                    print("  " + finding.render().replace("\n", "\n  "))
                any_violation |= not xss_report.verified
        for error in analysis.parse_errors:
            print(f"warning: {error}", file=sys.stderr)
    if not any_violation:
        print("verified: no SQLCIV reports")
    return 1 if any_violation else 0


if __name__ == "__main__":
    raise SystemExit(main())
