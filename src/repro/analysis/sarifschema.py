"""A vendored validation schema for the SARIF 2.1.0 output we emit.

The build environment is offline, so the official OASIS schema
(``sarif-schema-2.1.0.json``, ~400 KB) cannot be fetched at test time
and vendoring it wholesale would bloat the repository.  This module is a
**faithful subset** of that schema, transcribed by hand from the SARIF
2.1.0 specification (§3, "sarifLog" through "threadFlowLocation"):
every construct :mod:`repro.analysis.sarif` emits is pinned down with
the spec's exact required properties, types, and enums, and unknown
properties stay open exactly where the full schema leaves them open —
so a document that validates against the official schema validates here,
and the structural mistakes a SARIF consumer would trip over (missing
``message.text``, a ``level`` outside the enum, a ``threadFlow`` without
locations, a bad ``startLine``) are rejected.

Kept as a Python dict (not a ``.json`` data file) so it travels with the
package under any install layout without package-data configuration.
"""

from __future__ import annotations

_MESSAGE = {
    "type": "object",
    "properties": {
        "text": {"type": "string"},
        "markdown": {"type": "string"},
    },
    "anyOf": [{"required": ["text"]}, {"required": ["id"]}],
}

_ARTIFACT_LOCATION = {
    "type": "object",
    "properties": {
        "uri": {"type": "string"},
        "uriBaseId": {"type": "string"},
        "index": {"type": "integer", "minimum": -1},
    },
}

_REGION = {
    "type": "object",
    "properties": {
        "startLine": {"type": "integer", "minimum": 1},
        "startColumn": {"type": "integer", "minimum": 1},
        "endLine": {"type": "integer", "minimum": 1},
        "endColumn": {"type": "integer", "minimum": 1},
    },
}

_PHYSICAL_LOCATION = {
    "type": "object",
    "properties": {
        "artifactLocation": _ARTIFACT_LOCATION,
        "region": _REGION,
    },
    "anyOf": [{"required": ["artifactLocation"]}, {"required": ["address"]}],
}

_LOCATION = {
    "type": "object",
    "properties": {
        "physicalLocation": _PHYSICAL_LOCATION,
        "message": _MESSAGE,
    },
}

_THREAD_FLOW_LOCATION = {
    "type": "object",
    "properties": {
        "location": _LOCATION,
        "nestingLevel": {"type": "integer", "minimum": 0},
        "executionOrder": {"type": "integer", "minimum": -1},
    },
}

_THREAD_FLOW = {
    "type": "object",
    "required": ["locations"],
    "properties": {
        "message": _MESSAGE,
        "locations": {
            "type": "array",
            "minItems": 1,
            "items": _THREAD_FLOW_LOCATION,
        },
    },
}

_CODE_FLOW = {
    "type": "object",
    "required": ["threadFlows"],
    "properties": {
        "message": _MESSAGE,
        "threadFlows": {
            "type": "array",
            "minItems": 1,
            "items": _THREAD_FLOW,
        },
    },
}

_REPORTING_DESCRIPTOR = {
    "type": "object",
    "required": ["id"],
    "properties": {
        "id": {"type": "string"},
        "name": {"type": "string"},
        "shortDescription": _MESSAGE,
        "fullDescription": _MESSAGE,
        "helpUri": {"type": "string", "format": "uri"},
        "defaultConfiguration": {
            "type": "object",
            "properties": {
                "level": {
                    "enum": ["none", "note", "warning", "error"],
                },
                "enabled": {"type": "boolean"},
            },
        },
    },
}

_RESULT = {
    "type": "object",
    "required": ["message"],
    "properties": {
        "ruleId": {"type": "string"},
        "ruleIndex": {"type": "integer", "minimum": -1},
        "kind": {
            "enum": [
                "notApplicable", "pass", "fail", "review", "open",
                "informational",
            ],
        },
        "level": {"enum": ["none", "note", "warning", "error"]},
        "message": _MESSAGE,
        "locations": {"type": "array", "items": _LOCATION},
        "codeFlows": {"type": "array", "items": _CODE_FLOW},
        "partialFingerprints": {
            "type": "object",
            "additionalProperties": {"type": "string"},
        },
        "properties": {"type": "object"},
    },
}

_TOOL_COMPONENT = {
    "type": "object",
    "required": ["name"],
    "properties": {
        "name": {"type": "string"},
        "version": {"type": "string"},
        "semanticVersion": {"type": "string"},
        "informationUri": {"type": "string", "format": "uri"},
        "rules": {"type": "array", "items": _REPORTING_DESCRIPTOR},
    },
}

_RUN = {
    "type": "object",
    "required": ["tool"],
    "properties": {
        "tool": {
            "type": "object",
            "required": ["driver"],
            "properties": {"driver": _TOOL_COMPONENT},
        },
        "results": {"type": "array", "items": _RESULT},
        "originalUriBaseIds": {
            "type": "object",
            "additionalProperties": _ARTIFACT_LOCATION,
        },
        "columnKind": {"enum": ["utf16CodeUnits", "unicodeCodePoints"]},
        "properties": {"type": "object"},
    },
}

#: The validation schema for a SARIF 2.1.0 log file (subset — see module
#: docstring).  Draft-07 vocabulary, which the bundled ``jsonschema``
#: understands out of the box.
SARIF_2_1_0_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "title": "SARIF 2.1.0 (vendored subset)",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"enum": ["2.1.0"]},
        "runs": {"type": "array", "items": _RUN},
    },
}
