"""Abstract values for the string-taint interpreter.

PHP coerces nearly everything through strings, and the paper's analysis
cares exactly about string structure, so the abstract domain is small:

* :class:`StrVal` — a scalar: a nonterminal in the analysis's growing
  grammar (its language over-approximates the runtime string values).
  Booleans and numbers are strings with boolean/numeric languages, which
  matches PHP's coercion semantics.
* :class:`ArrVal` — an array: per-key scalar values plus a default for
  statically-unknown keys.

Taint lives on the grammar nonterminals (``DIRECT``/``INDIRECT``
labels), not on the values, per the paper's design.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.grammar import Nonterminal


@dataclass
class Value:
    pass


@dataclass
class StrVal(Value):
    nt: Nonterminal

    def __repr__(self) -> str:
        return f"StrVal({self.nt.name})"


@dataclass
class ArrVal(Value):
    """An abstract PHP array.

    ``elements`` maps *literal* keys (stringified) to values; ``default``
    over-approximates entries under unknown keys.  Reads of a missing
    key produce the default (or an empty-string value if none).
    """

    elements: dict[str, Value] = field(default_factory=dict)
    default: Value | None = None

    def get(self, key: str | None) -> Value | None:
        if key is not None and key in self.elements:
            return self.elements[key]
        return self.default

    def all_values(self) -> list[Value]:
        found = list(self.elements.values())
        if self.default is not None:
            found.append(self.default)
        return found

    def __repr__(self) -> str:
        keys = ",".join(sorted(self.elements)) or "-"
        return f"ArrVal[{keys}]"


@dataclass
class ObjVal(Value):
    """An abstract object: its class name plus abstract property values.

    Enough to resolve ``$DB->query(...)`` to a user-defined method and to
    flow strings through properties; full alias analysis is out of scope
    (the paper's prototype had "only limited support for references").
    """

    class_name: str = ""
    props: dict[str, Value] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"ObjVal({self.class_name})"
