"""Finding provenance: the taint chain behind every verdict.

Phase 1 already *computes* the path from an untrusted source to a
hotspot — every source birth, transducer image, refinement, and
widening is a grammar construction — but until now the chain was thrown
away once the labels had propagated.  This module reconstructs it:

* :mod:`repro.analysis.absdom` records an **origin event** (a plain
  dict) on each nonterminal minted by a provenance-relevant operation,
  plus explicit dataflow edges (``Grammar.prov_inputs``) where the
  productions alone cannot show the operand (an absorbed image grammar
  is structurally disconnected from its input);
* :func:`trace_provenance` walks productions ∪ ``prov_inputs`` from a
  finding's labeled nonterminal and assembles the events into a
  :class:`Provenance` record — source sites first, then the operations
  between source and sink in application order.

The walk is **deterministic**: BFS over production insertion order
(exactly the canonical order the verdict cache keys on), so the same
page grammar always yields the same chain, byte for byte — that is what
makes cold/warm and serial/parallel SARIF output identical.

Crucially the provenance is *re-derived from the hitting page's
grammar* whenever a verdict-memo entry is replayed (the memo stores
findings abstractly, by canonical index), so a verdict computed on
``pageA.php`` and replayed on ``pageB.php`` reports ``pageB``'s own
files, lines, and sanitizer sites — the same re-binding the witness
machinery already does for nonterminal names.

Event vocabulary (``kind``): ``source`` (untrusted birth — superglobal
or database fetch), ``sanitizer`` (FST image), ``refine`` (CFG∩FSA
refinement from a conditional), ``widen`` (charset-closure or
Mohri-Nederhof over-approximation), ``flow`` (taint carried through an
unmodeled call).  Events carry ``file``/``line`` of the statement being
interpreted when the operation ran, and sanitizer events carry small
``before``/``after`` sample strings.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.lang.grammar import Grammar, Nonterminal

#: events contributing to ``Provenance.sources``
SOURCE_KINDS = ("source",)
#: hard cap on the steps kept per finding (chains through widened
#: loops can reach every operation on the page; the head of the chain —
#: closest to the source — is the actionable part)
MAX_STEPS = 16
#: hard cap on nonterminals visited (provenance must stay cheap even on
#: pathological grammars; the cap is far above any corpus page)
MAX_VISITED = 50_000


@dataclass
class Provenance:
    """The taint chain for one finding, in picklable/JSON-able form."""

    #: labeled nonterminal the finding is about (page-local name)
    nonterminal: str = ""
    #: the C1–C5 check that fired
    check: str = ""
    #: untrusted births reaching the nonterminal: each
    #: ``{"kind": "source", "name": "_GET", "label": "direct",
    #:   "file": ..., "line": ...}``
    sources: list[dict] = field(default_factory=list)
    #: operations between the sources and the hotspot, source-side
    #: first: ``{"kind": "sanitizer", "name": "addslashes", ...}``
    steps: list[dict] = field(default_factory=list)
    #: True when ``steps`` was cut at :data:`MAX_STEPS`
    truncated: bool = False

    def as_dict(self) -> dict:
        return {
            "nonterminal": self.nonterminal,
            "check": self.check,
            "sources": [dict(event) for event in self.sources],
            "steps": [dict(event) for event in self.steps],
            "truncated": self.truncated,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Provenance":
        return cls(
            nonterminal=data.get("nonterminal", ""),
            check=data.get("check", ""),
            sources=[dict(e) for e in data.get("sources", ())],
            steps=[dict(e) for e in data.get("steps", ())],
            truncated=bool(data.get("truncated", False)),
        )


def trace_provenance(
    grammar: Grammar, labeled: Nonterminal, check: str = ""
) -> Provenance:
    """The provenance chain reaching ``labeled`` in ``grammar``.

    BFS from the labeled nonterminal over production references and
    ``prov_inputs`` edges, in production insertion order — the same
    deterministic order as :meth:`Grammar.canonical_order`.  The BFS
    runs sink→source, so collected operation events are reversed to
    read source→sink; duplicate events (one sanitizer call produces
    many image triples) keep their first occurrence.
    """
    provenance = Provenance(nonterminal=labeled.name, check=check)
    seen = {labeled}
    queue = deque([labeled])
    sources: list[dict] = []
    ops: list[dict] = []
    seen_source_keys: set[tuple] = set()
    seen_op_keys: set[tuple] = set()
    visited = 0
    while queue and visited < MAX_VISITED:
        visited += 1
        nt = queue.popleft()
        event = grammar.origins.get(nt)
        if event is not None:
            key = (
                event.get("kind"), event.get("name"), event.get("label"),
                event.get("file"), event.get("line"),
            )
            if event.get("kind") in SOURCE_KINDS:
                if key not in seen_source_keys:
                    seen_source_keys.add(key)
                    sources.append(event)
            elif key not in seen_op_keys:
                seen_op_keys.add(key)
                ops.append(event)
        successors: list[Nonterminal] = []
        for rhs in grammar.productions.get(nt, ()):
            for ref in grammar.rhs_nonterminals(rhs):
                successors.append(ref)
        successors.extend(grammar.prov_inputs.get(nt, ()))
        for ref in successors:
            if ref not in seen:
                seen.add(ref)
                queue.append(ref)
    # BFS walked sink-side outward; present operations source-side first
    ops.reverse()
    provenance.sources = sources
    if len(ops) > MAX_STEPS:
        provenance.steps = ops[:MAX_STEPS]
        provenance.truncated = True
    else:
        provenance.steps = ops
    return provenance
