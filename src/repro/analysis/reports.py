"""Bug-report data structures and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.grammar import DIRECT, INDIRECT

#: Confidence vocabulary for a verdict, attached by the soundness audit
#: (:mod:`repro.analysis.audit`).  ``SOUND`` — every construct on the
#: page's include closure is modeled exactly; Theorem 3.4 applies as
#: stated.  ``SOUND_MODULO_WIDENING`` — some constructs were
#: over-approximated (still sound, but extra false positives possible).
#: ``UNSOUND_CAVEATS`` — at least one construct *escaped* the model
#: (eval, variable-variable, unresolved dynamic include, …): a
#: "verified" verdict is conditional on those holes being benign.
SOUND = "sound"
SOUND_MODULO_WIDENING = "sound-modulo-widening"
UNSOUND_CAVEATS = "unsound-caveats"


@dataclass
class Finding:
    """The verdict for one labeled (untrusted) nonterminal at one hotspot."""

    file: str
    line: int
    sink: str
    nonterminal: str
    labels: frozenset[str]
    check: str         # which check decided: "odd-quotes", "literal-break",
                       # "numeric", "literal-position", "attack-string",
                       # "derivability", "tokenization"
    safe: bool
    witness: str = ""  # an offending untrusted substring, when unsafe
    example_query: str = ""  # a full query embedding the witness
    detail: str = ""
    #: set when the finding is unsafe but witness extraction came back
    #: empty (sampling horizon missed every accepting derivation) — an
    #: unsafe finding with ``witness == ""`` is otherwise indistinguishable
    #: from one whose check needs no witness
    witness_unavailable: bool = False
    #: output context for context-classified policies (e.g. ``attr-sq``)
    context: str = ""
    #: id of the sink policy that produced this finding; empty for the
    #: default SQL-confinement cascade (keeps legacy output byte-stable)
    policy: str = ""
    #: the taint chain behind this verdict
    #: (:class:`repro.analysis.provenance.Provenance`, or None) —
    #: always re-derived from the *hitting* page's grammar, so names and
    #: sites are page-local even when the verdict came from the memo
    provenance: object | None = None

    @property
    def category(self) -> str:
        """``direct`` dominates for report categorization (paper Table 1)."""
        if DIRECT in self.labels:
            return DIRECT
        if INDIRECT in self.labels:
            return INDIRECT
        return "unlabeled"

    def render(self) -> str:
        verdict = "SAFE" if self.safe else "VIOLATION"
        head = (
            f"{verdict} [{self.category}] {self.file}:{self.line} "
            f"sink={self.sink} via {self.check}"
        )
        lines = [head]
        if self.context:
            lines.append(f"  output context: {self.context}")
        if self.witness:
            lines.append(f"  witness substring: {self.witness!r}")
        elif self.witness_unavailable:
            lines.append("  witness substring: (unavailable)")
        if self.example_query:
            lines.append(f"  example query: {self.example_query!r}")
        if self.detail:
            lines.append(f"  {self.detail}")
        if self.provenance is not None and not self.safe:
            for event in self.provenance.sources:
                label = event.get("label", "")
                lines.append(
                    f"  source: {event.get('name', '?')} [{label}] at "
                    f"{event.get('file', '?')}:{event.get('line', '?')}"
                )
            for event in self.provenance.steps:
                lines.append(
                    f"  via {event.get('kind', '?')} {event.get('name', '?')} "
                    f"at {event.get('file', '?')}:{event.get('line', '?')}"
                )
        return "\n".join(lines)

    def as_dict(self) -> dict:
        out = {
            "file": self.file,
            "line": self.line,
            "sink": self.sink,
            "nonterminal": self.nonterminal,
            "labels": sorted(self.labels),
            "category": self.category,
            "check": self.check,
            "safe": self.safe,
            "witness": self.witness,
            "example_query": self.example_query,
            "detail": self.detail,
            "provenance": (
                self.provenance.as_dict() if self.provenance is not None else None
            ),
        }
        # New-policy fields are emitted only when set, so the default
        # SQL-confinement document stays byte-identical to earlier
        # releases (the golden regression test pins this).
        if self.witness_unavailable:
            out["witness_unavailable"] = True
        if self.context:
            out["context"] = self.context
        if self.policy:
            out["policy"] = self.policy
        return out


@dataclass
class HotspotReport:
    file: str
    line: int
    sink: str
    findings: list[Finding] = field(default_factory=list)
    query_samples: list[str] = field(default_factory=list)
    #: stamped by the soundness audit; SOUND when no audit ran (the
    #: pre-audit behaviour, kept for drop-in compatibility)
    confidence: str = SOUND

    @property
    def violations(self) -> list[Finding]:
        return [f for f in self.findings if not f.safe]

    @property
    def verified(self) -> bool:
        return not self.violations

    def render(self) -> str:
        status = "verified" if self.verified else "VULNERABLE"
        head = f"hotspot {self.file}:{self.line} ({self.sink}): {status}"
        if self.confidence != SOUND:
            head += f" [{self.confidence}]"
        lines = [head]
        for sample in self.query_samples[:3]:
            lines.append(f"  query ∋ {sample!r}")
        for finding in self.findings:
            lines.append("  " + finding.render().replace("\n", "\n  "))
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "file": self.file,
            "line": self.line,
            "sink": self.sink,
            "verified": self.verified,
            "confidence": self.confidence,
            "query_samples": self.query_samples[:3],
            "findings": [f.as_dict() for f in self.findings],
        }


@dataclass
class ProjectReport:
    """What the tool prints for one application (cf. Table 1 columns)."""

    name: str
    files: int = 0
    lines: int = 0
    grammar_nonterminals: int = 0
    grammar_productions: int = 0
    string_analysis_seconds: float = 0.0
    check_seconds: float = 0.0
    hotspots: list[HotspotReport] = field(default_factory=list)
    parse_errors: list[str] = field(default_factory=list)
    #: soundness-audit diagnostics (:class:`repro.analysis.audit.Diagnostic`)
    #: over the whole project, deduplicated by source location
    diagnostics: list = field(default_factory=list)

    @property
    def direct_violations(self) -> list[Finding]:
        return [
            f
            for spot in self.hotspots
            for f in spot.violations
            if f.category == DIRECT
        ]

    @property
    def indirect_violations(self) -> list[Finding]:
        return [
            f
            for spot in self.hotspots
            for f in spot.violations
            if f.category == INDIRECT
        ]

    @property
    def verified(self) -> bool:
        return all(spot.verified for spot in self.hotspots)

    @property
    def escaped_diagnostics(self) -> list:
        return [d for d in self.diagnostics if d.classification == "escaped"]

    @property
    def widened_diagnostics(self) -> list:
        return [d for d in self.diagnostics if d.classification == "widened"]

    @property
    def confidence(self) -> str:
        """The weakest confidence over the audit diagnostics."""
        if self.escaped_diagnostics:
            return UNSOUND_CAVEATS
        if self.widened_diagnostics or any(
            spot.confidence != SOUND for spot in self.hotspots
        ):
            return SOUND_MODULO_WIDENING
        return SOUND

    def render(self, audit: bool = False) -> str:
        lines = [
            f"== {self.name} ==",
            f"files={self.files} lines={self.lines} "
            f"|V|={self.grammar_nonterminals} |R|={self.grammar_productions}",
            f"string analysis: {self.string_analysis_seconds:.2f}s, "
            f"checks: {self.check_seconds:.2f}s",
            f"direct violations: {len(self.direct_violations)}, "
            f"indirect reports: {len(self.indirect_violations)}",
        ]
        if self.diagnostics:
            lines.append(
                f"audit: {len(self.escaped_diagnostics)} soundness hole(s), "
                f"{len(self.widened_diagnostics)} widening(s); "
                f"confidence: {self.confidence}"
            )
        for spot in self.hotspots:
            if not spot.verified:
                lines.append(spot.render())
        if audit:
            for diagnostic in self.diagnostics:
                lines.append(diagnostic.render())
        if self.verified:
            lines.append("VERIFIED: no SQLCIV reports")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "files": self.files,
            "lines": self.lines,
            "grammar_nonterminals": self.grammar_nonterminals,
            "grammar_productions": self.grammar_productions,
            "string_analysis_seconds": self.string_analysis_seconds,
            "check_seconds": self.check_seconds,
            "verified": self.verified,
            "confidence": self.confidence,
            "hotspots": [spot.as_dict() for spot in self.hotspots],
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "parse_errors": list(self.parse_errors),
        }


def json_document(root, page_results) -> dict:
    """The CLI's ``--json`` document for a list of per-page results.

    One function shared by the batch CLI and the analysis server, so a
    server-mode ``analyze`` response is *byte-identical* (after the same
    ``json.dumps``) to a cold CLI run over the same tree — key order,
    page order, and the overall-confidence fold all live here.
    """
    any_escape = False
    pages = []
    for page_result in page_results:
        page_audit = page_result.audit
        if page_audit is not None:
            any_escape |= bool(page_audit.escapes)
        pages.append(
            {
                "page": page_result.page,
                "verified": all(r.verified for r in page_result.reports),
                "confidence": (
                    page_audit.confidence if page_audit else SOUND
                ),
                "hotspots": [r.as_dict() for r in page_result.reports],
                "audit": page_audit.as_dict() if page_audit else None,
                "parse_errors": list(page_result.parse_errors),
            }
        )
    confidences = {p["confidence"] for p in pages}
    if any_escape:
        overall = UNSOUND_CAVEATS
    elif SOUND_MODULO_WIDENING in confidences:
        overall = SOUND_MODULO_WIDENING
    else:
        overall = SOUND
    return {
        "root": str(root),
        "verified": all(p["verified"] for p in pages),
        "confidence": overall,
        "pages": pages,
    }
