"""Bug-report data structures and rendering."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.grammar import DIRECT, INDIRECT


@dataclass
class Finding:
    """The verdict for one labeled (untrusted) nonterminal at one hotspot."""

    file: str
    line: int
    sink: str
    nonterminal: str
    labels: frozenset[str]
    check: str         # which check decided: "odd-quotes", "literal-break",
                       # "numeric", "literal-position", "attack-string",
                       # "derivability", "tokenization"
    safe: bool
    witness: str = ""  # an offending untrusted substring, when unsafe
    example_query: str = ""  # a full query embedding the witness
    detail: str = ""

    @property
    def category(self) -> str:
        """``direct`` dominates for report categorization (paper Table 1)."""
        if DIRECT in self.labels:
            return DIRECT
        if INDIRECT in self.labels:
            return INDIRECT
        return "unlabeled"

    def render(self) -> str:
        verdict = "SAFE" if self.safe else "VIOLATION"
        head = (
            f"{verdict} [{self.category}] {self.file}:{self.line} "
            f"sink={self.sink} via {self.check}"
        )
        lines = [head]
        if self.witness:
            lines.append(f"  witness substring: {self.witness!r}")
        if self.example_query:
            lines.append(f"  example query: {self.example_query!r}")
        if self.detail:
            lines.append(f"  {self.detail}")
        return "\n".join(lines)


@dataclass
class HotspotReport:
    file: str
    line: int
    sink: str
    findings: list[Finding] = field(default_factory=list)
    query_samples: list[str] = field(default_factory=list)

    @property
    def violations(self) -> list[Finding]:
        return [f for f in self.findings if not f.safe]

    @property
    def verified(self) -> bool:
        return not self.violations

    def render(self) -> str:
        status = "verified" if self.verified else "VULNERABLE"
        lines = [f"hotspot {self.file}:{self.line} ({self.sink}): {status}"]
        for sample in self.query_samples[:3]:
            lines.append(f"  query ∋ {sample!r}")
        for finding in self.findings:
            lines.append("  " + finding.render().replace("\n", "\n  "))
        return "\n".join(lines)


@dataclass
class ProjectReport:
    """What the tool prints for one application (cf. Table 1 columns)."""

    name: str
    files: int = 0
    lines: int = 0
    grammar_nonterminals: int = 0
    grammar_productions: int = 0
    string_analysis_seconds: float = 0.0
    check_seconds: float = 0.0
    hotspots: list[HotspotReport] = field(default_factory=list)
    parse_errors: list[str] = field(default_factory=list)

    @property
    def direct_violations(self) -> list[Finding]:
        return [
            f
            for spot in self.hotspots
            for f in spot.violations
            if f.category == DIRECT
        ]

    @property
    def indirect_violations(self) -> list[Finding]:
        return [
            f
            for spot in self.hotspots
            for f in spot.violations
            if f.category == INDIRECT
        ]

    @property
    def verified(self) -> bool:
        return all(spot.verified for spot in self.hotspots)

    def render(self) -> str:
        lines = [
            f"== {self.name} ==",
            f"files={self.files} lines={self.lines} "
            f"|V|={self.grammar_nonterminals} |R|={self.grammar_productions}",
            f"string analysis: {self.string_analysis_seconds:.2f}s, "
            f"checks: {self.check_seconds:.2f}s",
            f"direct violations: {len(self.direct_violations)}, "
            f"indirect reports: {len(self.indirect_violations)}",
        ]
        for spot in self.hotspots:
            if not spot.verified:
                lines.append(spot.render())
        if self.verified:
            lines.append("VERIFIED: no SQLCIV reports")
        return "\n".join(lines)
