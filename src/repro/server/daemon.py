"""The analysis daemon: ``sqlciv serve <root> --socket /run/sqlciv.sock``.

A long-running process that answers :mod:`repro.server.protocol`
requests over a Unix or TCP socket.  What staying resident buys:

* the **parsed-AST store** (the serial driver's parse cache) survives
  across requests, evicted per-file on ``invalidate``;
* the fingerprint-keyed **verdict memo** and the **FST-image memo** are
  process-global, so repeated grammar shapes are recognized across
  requests and across pages;
* each page's last :class:`~repro.analysis.analyzer.PageResult` is
  memoized, and an ``invalidate`` re-queues *only* the pages whose
  file-dependency closure the change intersects
  (:mod:`repro.server.depgraph`) — everything else replays its verdict.

Results are built by the same code path as the batch CLI
(:func:`repro.analysis.reports.json_document`,
:func:`repro.analysis.sarif.render_sarif`), merged in page order, so an
``analyze`` response is byte-identical to a cold ``sqlciv --json`` /
``--sarif`` run over the same tree.

Multi-tenancy: several projects can be resident at once.  The root on
the command line is the *default* project; ``load_project`` adds more,
``unload_project`` evicts them, and ``analyze`` / ``fix`` /
``invalidate`` take an optional ``project`` name.  Each project owns
its memo, parse cache, dependency graph, and invalidation **epoch** in
a :class:`ProjectState` behind its own lock, so an edit to one project
can never invalidate (or leak into) another; process-global shared
state — the verdict memo, the FST-image memo, and the analysis farm's
shared memo service — is content-addressed, so cross-project sharing
is sound by construction (see DESIGN "Soundness of shared memos").

Concurrency: connections are handled in threads.  Requests against
different projects interleave freely (per-project locks); the actual
analysis batches serialize on one analysis lock and — when the daemon
runs with ``--jobs N > 1`` — share a single persistent
:class:`~repro.farm.driver.AnalysisFarm`, so every resident project is
served by the same warm worker pool.  A request that arrives while an
equivalent batch is running simply replays the then-fresh memo.

Staleness contract: the daemon trusts ``invalidate`` notifications.
Edits it was never told about are *not* picked up for memoized pages
(they are picked up for re-queued pages, which re-read the tree); run
with ``--cache-dir`` if you also want the conservative whole-project
hash as a second line of defense for cross-restart reuse.
"""

from __future__ import annotations

import argparse
import json
import logging
import os
import re
import socketserver
import sys
import threading
import time
from pathlib import Path

from repro.obs.metrics import PERF
from repro.analysis.analyzer import PageResult, entry_pages, run_pages
from repro.analysis.diskcache import RESOLVER_EXTENSIONS
from repro.analysis.reports import UNSOUND_CAVEATS, json_document
from repro.analysis.sarif import render_sarif

from . import protocol
from .depgraph import DependencyGraph

log = logging.getLogger(__name__)

DEPGRAPH_FILENAME = "depgraph.json"

#: Project names become cache-directory components
#: (``<cache-dir>/projects/<name>``), so they must be single flat path
#: segments: no separators, no ``..``, nothing a tenant could use to
#: escape its namespace or collide with another tenant's.
_PROJECT_NAME_RE = re.compile(r"[A-Za-z0-9._-]+")


def _project_name(root: str | Path) -> str:
    """A default project name: the root directory's basename."""
    return Path(os.path.abspath(root)).name or "project"


def _validate_project_name(name: str) -> None:
    if not _PROJECT_NAME_RE.fullmatch(name) or set(name) <= {"."}:
        raise protocol.ProtocolError(
            protocol.INVALID_PARAMS,
            f"invalid project name {name!r}: must be a [A-Za-z0-9._-]+ "
            "slug (no path separators, not '.' or '..')",
        )


class ProjectState:
    """Everything the daemon keeps resident for one project: the
    per-page result memo, the shared parse cache, the dependency graph,
    and the invalidation **epoch** — a counter bumped on every
    ``invalidate`` so farm workers rebuild their per-project
    environments (resolver, parse cache, file census) instead of
    serving stale ones.  Guarded by its own re-entrant lock, so
    requests against different projects never contend."""

    def __init__(
        self, name: str, root: str | Path, cache_dir: str | Path | None = None
    ) -> None:
        self.name = name
        self.root = Path(root)
        if not self.root.is_dir():
            raise NotADirectoryError(f"{self.root} is not a directory")
        self._abs_root = Path(os.path.abspath(self.root))
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.lock = threading.RLock()
        self.loaded = time.time()
        self.epoch = 0
        #: (relative page, audit flag) → memoized PageResult
        self.memo: dict[tuple[str, bool], PageResult] = {}
        #: absolute path → (tree, error); shared with run_pages on the
        #: serial path, evicted per-file on invalidate
        self.parse_cache: dict = {}
        self.depgraph = DependencyGraph()
        if self.cache_dir is not None:
            persisted = DependencyGraph.load(
                self.cache_dir / DEPGRAPH_FILENAME, root=str(self.root)
            )
            if persisted is not None:
                self.depgraph = persisted
                log.info(
                    "%s: loaded persisted dependency graph: "
                    "%d pages, %d files",
                    name, len(persisted.pages()), len(persisted.files()),
                )

    # -- path helpers ------------------------------------------------------

    def rel(self, path: str | Path) -> str:
        try:
            return Path(path).relative_to(self.root).as_posix()
        except ValueError:
            return Path(path).as_posix()

    def normalize(self, raw: str) -> str | None:
        """Project-relative POSIX form of a client-supplied path, or
        None when it is outside the project root (``..`` components are
        collapsed first, so traversal can't sneak back in)."""
        candidate = Path(raw)
        if not candidate.is_absolute():
            candidate = self._abs_root / candidate
        normalized = Path(os.path.normpath(str(candidate)))
        try:
            return normalized.relative_to(self._abs_root).as_posix()
        except ValueError:
            return None

    def persist_depgraph(self) -> None:
        if self.cache_dir is None:
            return
        try:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self.depgraph.save(
                self.cache_dir / DEPGRAPH_FILENAME, root=str(self.root)
            )
        except OSError as exc:
            log.warning(
                "%s: could not persist dependency graph: %s", self.name, exc
            )

    def summary(self) -> dict:
        return {
            "name": self.name,
            "root": str(self.root),
            "epoch": self.epoch,
            "memoized_pages": len({rel for rel, _audit in self.memo}),
            "depgraph_pages": len(self.depgraph.pages()),
            "loaded_seconds_ago": round(time.time() - self.loaded, 3),
        }


class AnalysisDaemon:
    """Protocol dispatcher + incremental analysis state (socket-free, so
    tests can drive it in-process and the socket layer stays thin)."""

    def __init__(
        self,
        project_root: str | Path,
        jobs: int | None = 1,
        cache_dir: str | Path | None = None,
        cache_max_mb: float | None = None,
        policies=None,
    ) -> None:
        self.jobs = jobs if jobs and jobs >= 1 else 1
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.cache_max_mb = cache_max_mb
        #: optional PolicyConfig; fixed for the daemon's lifetime, so the
        #: (page, audit) memo key needs no policy component — the config
        #: digest still keys the on-disk cache through run_pages
        self.policies = policies
        self.started = time.time()
        self.stopping = False
        #: project name → ProjectState; guarded by the registry lock
        #: (held only for dict lookups/mutations, never across analysis)
        self.projects: dict[str, ProjectState] = {}
        self._projects_lock = threading.RLock()
        #: analysis batches serialize here — the farm's workers are a
        #: shared resource, and run_pages' process-global memos are not
        #: re-entrant from concurrent threads.  Lock order is always
        #: project.lock → _analysis_lock, never the reverse.
        self._analysis_lock = threading.RLock()
        #: shared persistent worker pool (created lazily on the first
        #: parallel batch; every resident project analyzes through it)
        self._farm = None
        default = ProjectState(
            _project_name(project_root), project_root, cache_dir=self.cache_dir
        )
        self.projects[default.name] = default
        self.default_name = default.name
        # back-compat: the default project's root, as `status` reports it
        self.root = default.root

    # -- project registry --------------------------------------------------

    def _project(self, params: dict) -> ProjectState:
        """The project a request addresses (``project`` param, else the
        default project the daemon was started on)."""
        name = params.get("project")
        with self._projects_lock:
            if name is None:
                return self.projects[self.default_name]
            try:
                return self.projects[name]
            except KeyError:
                raise protocol.ProtocolError(
                    protocol.INVALID_PARAMS,
                    f"no loaded project named {name!r} "
                    f"(loaded: {sorted(self.projects)}); "
                    "load it first with load_project",
                )

    def _farm_for_batch(self):
        """The shared farm when the daemon runs parallel batches; None
        keeps run_pages on the serial in-process path."""
        if self.jobs <= 1:
            return None
        if self._farm is None:
            from repro.farm.driver import AnalysisFarm

            self._farm = AnalysisFarm(self.jobs)
            log.info("analysis farm started: %d workers", self.jobs)
        return self._farm

    # -- dispatch ----------------------------------------------------------

    def dispatch_line(self, line: bytes | str) -> tuple[dict, bool]:
        """One request line → (response object, stop-serving flag)."""
        try:
            request = protocol.parse_request(line)
        except protocol.ProtocolError as exc:
            PERF.incr("server.requests.malformed")
            return (
                protocol.error_response(exc.request_id, exc.code, str(exc)),
                False,
            )
        request_id, op, params = request["id"], request["op"], request["params"]
        PERF.incr(f"server.requests.{op}")
        handler = getattr(self, f"op_{op}")
        # no global lock here: each op takes the locks it needs (its
        # project's lock, the registry lock, the analysis lock), so
        # clients of different projects are served concurrently
        with PERF.latency("server.request_seconds"):
            try:
                result = handler(params)
            except protocol.ProtocolError as exc:
                return (
                    protocol.error_response(request_id, exc.code, str(exc)),
                    False,
                )
            except Exception as exc:  # never let a bug kill the daemon
                log.exception("op %s failed", op)
                PERF.incr("server.requests.internal_error")
                return (
                    protocol.error_response(
                        request_id,
                        protocol.INTERNAL_ERROR,
                        f"{type(exc).__name__}: {exc}",
                    ),
                    False,
                )
        return protocol.ok_response(request_id, result), op == "shutdown"

    # -- operations --------------------------------------------------------

    def op_analyze(self, params: dict) -> dict:
        project = self._project(params)
        audit = bool(params.get("audit", True))
        requested = params.get("pages")
        with project.lock, PERF.timer("server.analyze"):
            if requested is None:
                pages = entry_pages(project.root)
            else:
                pages = []
                for raw in requested:
                    rel = project.normalize(raw)
                    if rel is None:
                        raise protocol.ProtocolError(
                            protocol.INVALID_PARAMS,
                            f"page {raw!r} is outside the project root",
                        )
                    page = project.root / rel
                    if not page.is_file():
                        raise protocol.ProtocolError(
                            protocol.INVALID_PARAMS,
                            f"page {raw!r} does not exist",
                        )
                    pages.append(page)
            keys = [(project.rel(page), audit) for page in pages]
            stale = [
                page for page, key in zip(pages, keys)
                if key not in project.memo
            ]
            if stale:
                with self._analysis_lock:
                    fresh = run_pages(
                        project.root,
                        stale,
                        audit=audit,
                        jobs=self.jobs,
                        cache_dir=project.cache_dir,
                        cache_max_mb=self.cache_max_mb,
                        parse_cache=project.parse_cache,
                        policies=self.policies,
                        farm=self._farm_for_batch(),
                        epoch=project.epoch,
                    )
                for result in fresh:
                    rel = project.rel(result.page)
                    project.memo[(rel, audit)] = result
                    project.depgraph.record(
                        rel, result.deps, result.layout_sensitive
                    )
                project.persist_depgraph()
            PERF.incr("server.pages.reanalyzed", len(stale))
            PERF.incr("server.pages.replayed", len(pages) - len(stale))
            results = [project.memo[key] for key in keys]
            document = json_document(project.root, results)
            response = {
                "document": document,
                "pages_total": len(pages),
                "pages_reanalyzed": len(stale),
                "pages_replayed": len(pages) - len(stale),
                "exit_code": self._exit_code(document, audit),
            }
            if params.get("sarif"):
                response["sarif"] = render_sarif(
                    project.root, results, policies=self.policies
                )
        return response

    @staticmethod
    def _exit_code(document: dict, audit: bool) -> int:
        """The batch CLI's exit-code contract, for clients to mirror."""
        if not document["verified"]:
            return 1
        if audit and document["confidence"] == UNSOUND_CAVEATS:
            return 3
        return 0

    def op_fix(self, params: dict) -> dict:
        """Run the remediation engine against the resident project.

        The engine reuses the daemon's parse cache for its pre-patch
        analysis; when ``apply`` wrote patches back, the patched files
        go through the standard ``invalidate`` path so the memo and
        depgraph see the new tree."""
        from repro.remediate import remediate_project

        project = self._project(params)
        requested = params.get("pages")
        pages = None
        if requested is not None:
            pages = []
            for raw in requested:
                rel = project.normalize(raw)
                if rel is None:
                    raise protocol.ProtocolError(
                        protocol.INVALID_PARAMS,
                        f"page {raw!r} is outside the project root",
                    )
                if not (project.root / rel).is_file():
                    raise protocol.ProtocolError(
                        protocol.INVALID_PARAMS,
                        f"page {raw!r} does not exist",
                    )
                pages.append(rel)
        with project.lock, PERF.timer("server.fix"):
            with self._analysis_lock:
                report = remediate_project(
                    project.root,
                    pages=pages,
                    policies=self.policies,
                    apply=bool(params.get("apply", False)),
                    parse_cache=project.parse_cache,
                    oracle=bool(params.get("oracle", True)),
                )
            result = report.as_dict()
            if report.applied:
                patched = sorted({patch.file for patch in report.patches})
                result["invalidated"] = self.op_invalidate(
                    {"paths": patched, "project": project.name}
                )
        return result

    def op_invalidate(self, params: dict) -> dict:
        project = self._project(params)
        changed: list[str] = []
        added: list[str] = []
        deleted: list[str] = []
        ignored: list[str] = []
        with project.lock:
            for raw in params["paths"]:
                rel = project.normalize(raw)
                if rel is None:
                    log.info(
                        "invalidate: %s is outside the project root — "
                        "ignored", raw
                    )
                    ignored.append(raw)
                    continue
                if not rel.endswith(RESOLVER_EXTENSIONS):
                    log.info(
                        "invalidate: %s is not resolver-visible — ignored",
                        raw,
                    )
                    ignored.append(raw)
                    continue
                if not (project.root / rel).exists():
                    deleted.append(rel)
                elif project.depgraph.knows_file(rel):
                    changed.append(rel)
                else:
                    # exists but was never a recorded dependency: treat as
                    # an addition (it may re-route include-name resolution)
                    added.append(rel)
            affected = project.depgraph.affected_by(
                changed=changed, added=added, deleted=deleted
            )
            for rel in affected:
                project.memo.pop((rel, True), None)
                project.memo.pop((rel, False), None)
            for rel in deleted:
                # a deleted entry page can't be re-analyzed; drop it
                if rel in set(project.depgraph.pages()):
                    project.depgraph.forget(rel)
                    project.memo.pop((rel, True), None)
                    project.memo.pop((rel, False), None)
            for rel in changed + added + deleted:
                project.parse_cache.pop(project.root / rel, None)
            if changed or added or deleted:
                # farm workers key their per-project environments by
                # (root, epoch); bumping forces a rebuild, so only THIS
                # project's workers' state is refreshed — other resident
                # projects keep their epochs and their environments
                project.epoch += 1
        PERF.incr("server.pages.invalidated", len(affected))
        if affected:
            log.info(
                "invalidate %s: %d changed, %d added, %d deleted → "
                "%d page(s) re-queued", project.name, len(changed),
                len(added), len(deleted), len(affected),
            )
        return {
            "invalidated_pages": sorted(affected),
            "changed": sorted(changed),
            "added": sorted(added),
            "deleted": sorted(deleted),
            "ignored": ignored,
        }

    # -- project management ops --------------------------------------------

    def op_load_project(self, params: dict) -> dict:
        """Make another project resident: ``{"root": DIR, "name": ...}``.

        The new project gets its own memo, parse cache, depgraph, and
        epoch; when the daemon has a cache dir, the project's on-disk
        state lives under ``<cache-dir>/projects/<name>/`` so depgraphs
        and page caches never collide across tenants."""
        root = params["root"]
        name = params.get("name") or _project_name(root)
        _validate_project_name(name)
        cache_dir = (
            self.cache_dir / "projects" / name
            if self.cache_dir is not None else None
        )
        with self._projects_lock:
            existing = self.projects.get(name)
            if existing is not None:
                if Path(os.path.abspath(existing.root)) == Path(
                    os.path.abspath(root)
                ):
                    return {"loaded": False, "project": existing.summary()}
                raise protocol.ProtocolError(
                    protocol.INVALID_PARAMS,
                    f"project name {name!r} is already loaded for "
                    f"{existing.root}; pass a distinct \"name\"",
                )
            try:
                project = ProjectState(name, root, cache_dir=cache_dir)
            except NotADirectoryError as exc:
                raise protocol.ProtocolError(
                    protocol.INVALID_PARAMS, str(exc)
                )
            self.projects[name] = project
        log.info("loaded project %s (%s)", name, project.root)
        PERF.incr("server.projects.loaded")
        return {"loaded": True, "project": project.summary()}

    def op_unload_project(self, params: dict) -> dict:
        name = params["name"]
        with self._projects_lock:
            if name == self.default_name:
                raise protocol.ProtocolError(
                    protocol.INVALID_PARAMS,
                    f"{name!r} is the daemon's default project and cannot "
                    "be unloaded",
                )
            project = self.projects.get(name)
            if project is None:
                raise protocol.ProtocolError(
                    protocol.INVALID_PARAMS,
                    f"no loaded project named {name!r}",
                )
            del self.projects[name]
        # take the project's lock once to let any in-flight request on
        # it drain before its state is dropped
        with project.lock:
            project.persist_depgraph()
        log.info("unloaded project %s (%s)", name, project.root)
        PERF.incr("server.projects.unloaded")
        return {"unloaded": True, "name": name}

    def op_projects(self, params: dict) -> dict:
        with self._projects_lock:
            summaries = [
                self.projects[name].summary()
                for name in sorted(self.projects)
            ]
        return {"default": self.default_name, "projects": summaries}

    # -- metrics / status --------------------------------------------------

    def _resident_gauges(self) -> dict[str, float]:
        """Current-value gauges for the metrics surface (the registry's
        own gauges are high-water marks, so point-in-time occupancy is
        sampled here).  Page/file totals aggregate over every resident
        project."""
        from repro.analysis.policy import VERDICT_CACHE
        from repro.lang.image import IMAGE_CACHE

        with self._projects_lock:
            projects = list(self.projects.values())
        return {
            "resident.projects": len(projects),
            "resident.pages": sum(
                len({rel for rel, _audit in p.memo}) for p in projects
            ),
            "server.uptime_seconds": round(time.time() - self.started, 3),
            "server.parse_cache_entries": sum(
                len(p.parse_cache) for p in projects
            ),
            "server.depgraph_pages": sum(
                len(p.depgraph.pages()) for p in projects
            ),
            "server.depgraph_files": sum(
                len(p.depgraph.files()) for p in projects
            ),
            "image.cache.entries": len(IMAGE_CACHE),
            "policy.verdict_cache.entries": len(VERDICT_CACHE),
        }

    def _cache_hit_rates(self) -> dict[str, float]:
        """Hit rates per cache since daemon start, from the counters."""
        from repro.obs.metrics import cache_rates

        return {
            label.replace(" ", "_"): round(rate, 4)
            for label, _hits, _misses, rate, _extras in cache_rates(
                PERF.snapshot()["counters"]
            )
        }

    def op_status(self, params: dict) -> dict:
        # top-level fields describe the default project (the one the
        # daemon was started on) for backwards compatibility; the
        # "projects" list covers every resident tenant
        with self._projects_lock:
            default = self.projects[self.default_name]
            summaries = [
                self.projects[name].summary()
                for name in sorted(self.projects)
            ]
        memoized = {rel for rel, _audit in default.memo}
        return {
            "protocol": protocol.PROTOCOL_VERSION,
            "root": str(default.root),
            "pid": os.getpid(),
            "uptime_seconds": round(time.time() - self.started, 3),
            "jobs": self.jobs,
            "cache_dir": str(self.cache_dir) if self.cache_dir else None,
            "memoized_pages": len(memoized),
            "parse_cache_entries": len(default.parse_cache),
            "depgraph": {
                "pages": len(default.depgraph.pages()),
                "files": len(default.depgraph.files()),
                "layout_sensitive_pages": len(
                    default.depgraph.layout_sensitive_pages()
                ),
            },
            "projects": summaries,
            "resident": self._resident_gauges(),
            "cache_hit_rates": self._cache_hit_rates(),
        }

    def prometheus_text(self) -> str:
        """The Prometheus exposition for this daemon (served both by the
        ``metrics`` op with ``format="prometheus"`` and by the HTTP
        ``--metrics-addr`` endpoint)."""
        from repro.obs.prometheus import render_prometheus

        return render_prometheus(
            PERF.snapshot(), extra_gauges=self._resident_gauges()
        )

    def op_metrics(self, params: dict) -> dict:
        if params.get("format") == "prometheus":
            return {
                "content_type": "text/plain; version=0.0.4; charset=utf-8",
                "text": self.prometheus_text(),
            }
        return {
            "uptime_seconds": round(time.time() - self.started, 3),
            "perf": PERF.snapshot(),
            "resident": self._resident_gauges(),
            "cache_hit_rates": self._cache_hit_rates(),
        }

    def op_ping(self, params: dict) -> dict:
        return {"pong": True, "protocol": protocol.PROTOCOL_VERSION}

    def op_shutdown(self, params: dict) -> dict:
        self.stopping = True
        self.close()
        log.info("shutdown requested")
        return {"stopping": True}

    def close(self) -> None:
        """Persist every project's depgraph and stop the shared farm."""
        with self._projects_lock:
            projects = list(self.projects.values())
        for project in projects:
            with project.lock:
                project.persist_depgraph()
        # the analysis lock lets any in-flight batch drain before its
        # workers are torn down, and synchronizes _farm against
        # _farm_for_batch (which runs under the same lock)
        with self._analysis_lock:
            if self._farm is not None:
                self._farm.shutdown()
                self._farm = None


# -- Prometheus scrape endpoint ----------------------------------------------


def start_metrics_server(daemon: AnalysisDaemon, addr: str):
    """Serve ``GET /metrics`` (Prometheus text format) on ``addr``.

    ``addr`` is ``HOST:PORT`` (``:0`` / bare ``PORT`` bind an ephemeral
    port on 127.0.0.1 — the bound address is reported in the daemon's
    ready line).  Returns the running ``ThreadingHTTPServer``; the
    serving thread is a daemon thread, so it never blocks shutdown.
    """
    from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

    host, _, port_text = addr.rpartition(":")
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(f"--metrics-addr: invalid port in {addr!r}")

    class _MetricsHandler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 (http.server API)
            if self.path.split("?", 1)[0] not in ("/metrics", "/"):
                self.send_error(404, "only /metrics is served here")
                return
            body = daemon.prometheus_text().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *args) -> None:
            log.debug("metrics endpoint: " + format, *args)

    httpd = ThreadingHTTPServer((host, port), _MetricsHandler)
    thread = threading.Thread(
        target=httpd.serve_forever,
        kwargs={"poll_interval": 0.1},
        name="sqlciv-metrics",
        daemon=True,
    )
    thread.start()
    return httpd


# -- socket layer -------------------------------------------------------------


class _RequestHandler(socketserver.StreamRequestHandler):
    def handle(self) -> None:
        daemon: AnalysisDaemon = self.server.daemon  # type: ignore[attr-defined]
        while True:
            try:
                line = self.rfile.readline(protocol.MAX_LINE_BYTES)
            except OSError:
                break
            if not line:
                break
            if not line.strip():
                continue
            if len(line) >= protocol.MAX_LINE_BYTES and not line.endswith(b"\n"):
                response, stop = (
                    protocol.error_response(
                        None, protocol.REQUEST_TOO_LARGE,
                        f"request exceeds {protocol.MAX_LINE_BYTES} bytes",
                    ),
                    True,  # the stream is desynchronized; drop the client
                )
            else:
                response, stop = daemon.dispatch_line(line)
            try:
                self.wfile.write(protocol.encode(response))
                self.wfile.flush()
            except OSError:
                break
            if stop:
                if daemon.stopping:
                    # shutdown() blocks until serve_forever() returns, so
                    # it must run outside this handler thread's accept loop
                    threading.Thread(
                        target=self.server.shutdown, daemon=True
                    ).start()
                break


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


if hasattr(socketserver, "ThreadingUnixStreamServer"):

    class _ThreadingUnixServer(socketserver.ThreadingUnixStreamServer):
        daemon_threads = True

else:  # non-Unix platforms: TCP only
    _ThreadingUnixServer = None  # type: ignore[assignment]


def create_server(
    daemon: AnalysisDaemon,
    socket_path: str | Path | None = None,
    host: str = "127.0.0.1",
    port: int | None = None,
):
    """A ready-to-``serve_forever`` socket server bound to either a Unix
    socket (``socket_path``) or TCP ``host:port`` (port 0 = ephemeral)."""
    if socket_path is not None:
        if _ThreadingUnixServer is None:
            raise OSError("unix sockets are not supported on this platform")
        socket_path = Path(socket_path)
        try:
            socket_path.unlink()
        except OSError:
            pass
        server = _ThreadingUnixServer(str(socket_path), _RequestHandler)
    else:
        server = _ThreadingTCPServer((host, port or 0), _RequestHandler)
    server.daemon = daemon  # type: ignore[attr-defined]
    return server


def serve_main(argv: list[str] | None = None) -> int:
    """The ``sqlciv serve`` entry point."""
    parser = argparse.ArgumentParser(
        prog="sqlciv serve",
        description=(
            "Run the persistent analysis daemon: keeps every memo warm "
            "across requests and re-analyzes only the pages an edit can "
            "affect (see README 'Server mode')."
        ),
    )
    parser.add_argument("root", help="project root directory to serve")
    parser.add_argument("--socket", metavar="PATH",
                        help="listen on a unix socket at PATH")
    parser.add_argument("--host", default="127.0.0.1",
                        help="TCP bind host (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, metavar="N",
                        help="listen on TCP port N (0 = ephemeral)")
    parser.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="run_pages worker count per analyze batch")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="on-disk AST/result cache (also persists the "
                             "dependency graph across restarts)")
    parser.add_argument("--cache-max-mb", type=float, metavar="MB",
                        help="cap the on-disk cache; least-recently-used "
                             "entries are pruned past the cap")
    parser.add_argument("--policy-config", metavar="FILE",
                        help="enable sink policies from a YAML config for "
                             "the daemon's lifetime (see README 'Policies')")
    parser.add_argument("--metrics-addr", metavar="HOST:PORT",
                        help="also serve GET /metrics (Prometheus text "
                             "format) over HTTP on HOST:PORT (':0' binds an "
                             "ephemeral port; the bound address appears in "
                             "the ready line as \"metrics\")")
    parser.add_argument("--log-level", choices=("quiet", "info", "debug"),
                        default="info")
    args = parser.parse_args(argv)
    if args.socket is None and args.port is None:
        parser.error("one of --socket or --port is required")

    policies = None
    if args.policy_config:
        from repro.analysis.policies import PolicyConfigError, load_policy_config

        try:
            policies = load_policy_config(args.policy_config)
        except PolicyConfigError as exc:
            parser.error(f"--policy-config: {exc}")

    logging.basicConfig(
        stream=sys.stderr,
        level={"quiet": logging.ERROR, "info": logging.INFO,
               "debug": logging.DEBUG}[args.log_level],
        format="%(levelname)s %(name)s: %(message)s",
    )
    try:
        daemon = AnalysisDaemon(
            args.root,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            cache_max_mb=args.cache_max_mb,
            policies=policies,
        )
    except NotADirectoryError as exc:
        parser.error(str(exc))
    server = create_server(
        daemon, socket_path=args.socket, host=args.host, port=args.port
    )
    metrics_server = None
    if args.metrics_addr:
        try:
            metrics_server = start_metrics_server(daemon, args.metrics_addr)
        except (OSError, ValueError) as exc:
            server.server_close()
            parser.error(f"--metrics-addr: {exc}")
    if args.socket is not None:
        address = args.socket
    else:
        address = "%s:%d" % server.server_address[:2]
    ready = {"listening": address, "pid": os.getpid()}
    if metrics_server is not None:
        ready["metrics"] = "%s:%d" % metrics_server.server_address[:2]
        log.info("metrics endpoint on http://%s/metrics", ready["metrics"])
    # the ready line scripts wait for (stdout, flushed, machine-readable)
    print(json.dumps(ready), flush=True)
    log.info("sqlciv daemon serving %s on %s", daemon.root, address)
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        daemon.close()
        if metrics_server is not None:
            metrics_server.shutdown()
            metrics_server.server_close()
        if args.socket is not None:
            try:
                Path(args.socket).unlink()
            except OSError:
                pass
    log.info("sqlciv daemon stopped")
    return 0


if __name__ == "__main__":
    raise SystemExit(serve_main())
