"""The per-page file-dependency graph behind incremental re-analysis.

The batch pipeline's disk cache keys every page result by a hash of the
*whole project* (:func:`repro.analysis.diskcache.project_state_hash`):
sound, but any edit invalidates everything.  The analysis server instead
records, for every entry page, the exact set of files its analysis
observed — the entry page, its transitive include closure, parse
failures, and every file a dynamic include resolved to even when
interpretation skipped it (``include_once``, cycles).  That set is
collected in :class:`~repro.analysis.stringtaint.StringTaintAnalysis`
(``dep_files``) during include resolution and shipped in
:class:`~repro.analysis.analyzer.PageResult.deps`.

Invalidation semantics (the soundness argument is DESIGN.md §5e):

* **content edit** of file *F* — exactly the pages with *F* in their
  closure can change: re-queue ``dependents(F)``;
* **deletion** of *F* — ``dependents(F)``, plus every *layout-sensitive*
  page (a page with a dynamic or unresolved include, whose resolution
  is a function of the project layout itself, paper §4);
* **addition** of *F* — every layout-sensitive page, plus the dependents
  of any known file sharing *F*'s basename: include-name resolution maps
  each candidate name to the first matching file in sorted order, so a
  newly added file can re-route a name — but only a name with the same
  basename — away from the file that previously won it.

Everything not in the affected set replays its memoized verdict
untouched.  The graph is persisted alongside the disk cache
(``depgraph.json``) so a restarted daemon can answer ``invalidate``
before its first ``analyze``.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path

from repro.analysis.diskcache import ANALYZER_CACHE_VERSION

log = logging.getLogger(__name__)

DEPGRAPH_FORMAT = "sqlciv-depgraph/1"


def _basename(rel: str) -> str:
    return rel.rsplit("/", 1)[-1]


class DependencyGraph:
    """Entry pages → file closures, with the reverse index that makes
    ``dependents`` O(1).  All paths are project-relative POSIX strings."""

    def __init__(self) -> None:
        #: page → its dependency closure (always contains the page itself)
        self._pages: dict[str, frozenset[str]] = {}
        #: pages whose verdicts depend on the project layout too
        self._layout_sensitive: set[str] = set()
        #: file → pages whose closure contains it
        self._rdeps: dict[str, set[str]] = {}
        #: basename → known files carrying it (for addition re-routing)
        self._basenames: dict[str, set[str]] = {}

    # -- recording ---------------------------------------------------------

    def record(self, page: str, deps, layout_sensitive: bool) -> None:
        """(Re-)register a page's closure after it was analyzed."""
        self.forget(page)
        closure = frozenset(deps) | {page}
        self._pages[page] = closure
        if layout_sensitive:
            self._layout_sensitive.add(page)
        for file in closure:
            self._rdeps.setdefault(file, set()).add(page)
            self._basenames.setdefault(_basename(file), set()).add(file)

    def forget(self, page: str) -> None:
        closure = self._pages.pop(page, None)
        self._layout_sensitive.discard(page)
        if closure is None:
            return
        for file in closure:
            pages = self._rdeps.get(file)
            if pages is not None:
                pages.discard(page)
                if not pages:
                    del self._rdeps[file]
                    names = self._basenames.get(_basename(file))
                    if names is not None:
                        names.discard(file)
                        if not names:
                            del self._basenames[_basename(file)]

    # -- queries -----------------------------------------------------------

    def pages(self) -> list[str]:
        return sorted(self._pages)

    def files(self) -> list[str]:
        return sorted(self._rdeps)

    def knows_file(self, rel: str) -> bool:
        return rel in self._rdeps

    def deps_of(self, page: str) -> frozenset[str]:
        return self._pages.get(page, frozenset())

    def is_layout_sensitive(self, page: str) -> bool:
        return page in self._layout_sensitive

    def layout_sensitive_pages(self) -> set[str]:
        return set(self._layout_sensitive)

    def dependents(self, rel: str) -> set[str]:
        """Pages whose closure contains ``rel``."""
        return set(self._rdeps.get(rel, ()))

    def affected_by(
        self,
        changed=(),
        added=(),
        deleted=(),
    ) -> set[str]:
        """Every page a batch of filesystem events can have influenced
        (the invalidation rules in the module docstring)."""
        affected: set[str] = set()
        for rel in changed:
            affected |= self.dependents(rel)
        layout = self._layout_sensitive if (added or deleted) else set()
        affected |= set(layout)
        for rel in deleted:
            affected |= self.dependents(rel)
        for rel in added:
            for known in self._basenames.get(_basename(rel), ()):
                affected |= self.dependents(known)
        return affected

    # -- persistence -------------------------------------------------------

    def to_dict(self, root: str = "") -> dict:
        return {
            "format": DEPGRAPH_FORMAT,
            "version": ANALYZER_CACHE_VERSION,
            "root": root,
            "pages": {
                page: {
                    "deps": sorted(closure),
                    "layout_sensitive": page in self._layout_sensitive,
                }
                for page, closure in sorted(self._pages.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DependencyGraph":
        graph = cls()
        for page, entry in data.get("pages", {}).items():
            graph.record(
                page, entry.get("deps", ()), entry.get("layout_sensitive", False)
            )
        return graph

    def save(self, path: str | Path, root: str = "") -> None:
        payload = json.dumps(self.to_dict(root=root), indent=2) + "\n"
        target = Path(path)
        tmp = target.with_suffix(".tmp")
        tmp.write_text(payload, encoding="utf-8")
        tmp.replace(target)

    @classmethod
    def load(cls, path: str | Path, root: str = "") -> "DependencyGraph | None":
        """The persisted graph, or None when absent/stale/corrupt —
        a missing graph only costs precision on the first requests, never
        soundness, so every failure mode is a quiet miss."""
        try:
            data = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if not isinstance(data, dict):
            return None
        if data.get("format") != DEPGRAPH_FORMAT:
            return None
        if data.get("version") != ANALYZER_CACHE_VERSION:
            log.info("persisted depgraph is from cache version %s — ignored",
                     data.get("version"))
            return None
        if root and data.get("root") not in ("", root):
            return None
        try:
            return cls.from_dict(data)
        except (TypeError, AttributeError):
            return None
