"""The persistent analysis server (``sqlciv serve`` / ``sqlciv client``).

A long-running daemon that keeps every in-process memo warm — parsed
ASTs, the fingerprint-keyed verdict memo, the FST-image memo — and
re-analyzes only what an edit can actually affect, driven by a per-page
file-dependency graph recorded during include resolution:

* :mod:`repro.server.depgraph` — the dependency graph and its precise
  invalidation semantics (content edits, additions, deletions);
* :mod:`repro.server.protocol` — the line-delimited JSON wire protocol;
* :mod:`repro.server.daemon` — the request dispatcher and socket server;
* :mod:`repro.server.client` — a thin client library + CLI subcommand.
"""

from .client import ServerClient, ServerError
from .depgraph import DependencyGraph
from .protocol import PROTOCOL_VERSION, ProtocolError

__all__ = [
    "DependencyGraph",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServerClient",
    "ServerError",
]
