"""The analysis server's wire protocol: line-delimited JSON.

One request per line, one response line per request, over a Unix or TCP
stream socket.  Requests are JSON objects::

    {"id": 7, "op": "analyze", "pages": ["index.php"], "sarif": true}

``op`` is required; ``id`` is an optional client-chosen correlation
token (echoed verbatim in the response); every other key is an
op-specific parameter.  Responses are::

    {"id": 7, "ok": true, "result": {...}}
    {"id": 7, "ok": false, "error": {"code": "invalid-params", "message": "…"}}

A malformed request never tears down the connection: the daemon answers
with a structured error (``id`` null when the request was unparsable)
and keeps reading.  Request validation lives here so the daemon and the
tests share one definition of "well-formed".

Operations:

``analyze``
    ``pages`` (optional list of project-relative paths; default: every
    entry page), ``audit`` (bool, default true — matching the CLI's
    ``--json``, which always audits), ``sarif`` (bool: also render the
    SARIF 2.1.0 log), ``project`` (optional resident-project name;
    default: the project the daemon was started on).
``fix``
    ``pages`` (optional list, as for ``analyze``), ``apply`` (bool:
    write verified patches back to the tree — the daemon then
    invalidates the patched files itself), ``oracle`` (bool, default
    true: concrete witness cross-check), ``project`` (optional, as for
    ``analyze``).  Runs the remediation engine
    (:mod:`repro.remediate`) against the addressed project's root.
``invalidate``
    ``paths`` (required list): files that changed on disk.  Deleted and
    out-of-tree paths are legal — see the daemon.  ``project``
    (optional, as for ``analyze``).
``load_project``
    ``root`` (required directory path), ``name`` (optional; default:
    the root's basename).  Makes another project resident alongside the
    startup project — it gets its own memo, dependency graph, and
    invalidation epoch, served by the same daemon (and worker farm).
``unload_project``
    ``name`` (required): evict a resident project (the startup project
    cannot be unloaded).
``projects``
    No parameters; lists every resident project.
``metrics``
    ``format`` (optional: ``"json"``, the default, or ``"prometheus"``
    for the text exposition format the ``--metrics-addr`` endpoint
    serves — see :mod:`repro.obs.prometheus` for the name contract).
``status`` / ``ping``
    No parameters.
``shutdown``
    No parameters; the response is sent before the daemon stops.
"""

from __future__ import annotations

import json

PROTOCOL_VERSION = "sqlciv-server/1"

#: requests larger than this are rejected, not buffered forever
MAX_LINE_BYTES = 64 * 1024 * 1024

OPS = frozenset(
    {"analyze", "invalidate", "status", "metrics", "ping", "shutdown", "fix",
     "load_project", "unload_project", "projects"}
)

#: error codes a daemon can answer with
MALFORMED_JSON = "malformed-json"
INVALID_REQUEST = "invalid-request"
UNKNOWN_OP = "unknown-op"
INVALID_PARAMS = "invalid-params"
INTERNAL_ERROR = "internal-error"
REQUEST_TOO_LARGE = "request-too-large"


class ProtocolError(Exception):
    """A request the daemon must refuse, with a machine-readable code."""

    def __init__(self, code: str, message: str, request_id=None) -> None:
        super().__init__(message)
        self.code = code
        self.request_id = request_id


def _check_id(value):
    if value is not None and not isinstance(value, (str, int, float)):
        raise ProtocolError(
            INVALID_REQUEST, "request id must be a string, number, or null"
        )
    return value


def parse_request(line: bytes | str) -> dict:
    """Validate one request line into ``{"id", "op", "params"}``.

    Raises :class:`ProtocolError` (carrying the request id when one was
    recoverable) instead of letting any json/type error escape.
    """
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    try:
        data = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(MALFORMED_JSON, f"request is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise ProtocolError(INVALID_REQUEST, "request must be a JSON object")
    request_id = _check_id(data.get("id"))
    op = data.get("op")
    if not isinstance(op, str):
        raise ProtocolError(
            INVALID_REQUEST, 'request must carry an "op" string',
            request_id=request_id,
        )
    if op not in OPS:
        raise ProtocolError(
            UNKNOWN_OP,
            f"unknown op {op!r}; expected one of {sorted(OPS)}",
            request_id=request_id,
        )
    params = {k: v for k, v in data.items() if k not in ("id", "op")}
    _validate_params(op, params, request_id)
    return {"id": request_id, "op": op, "params": params}


def _validate_params(op: str, params: dict, request_id) -> None:
    def fail(message: str):
        raise ProtocolError(INVALID_PARAMS, message, request_id=request_id)

    def expect_str_list(name: str, value) -> None:
        if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value
        ):
            fail(f'"{name}" must be a list of strings')

    def expect_project(value) -> None:
        if value is not None and not isinstance(value, str):
            fail('"project" must be a string (a resident project name)')

    if op == "analyze":
        allowed = {"pages", "audit", "sarif", "project"}
        extra = set(params) - allowed
        if extra:
            fail(f"unexpected analyze parameter(s): {sorted(extra)}")
        if "pages" in params and params["pages"] is not None:
            expect_str_list("pages", params["pages"])
        for flag in ("audit", "sarif"):
            if flag in params and not isinstance(params[flag], bool):
                fail(f'"{flag}" must be a boolean')
        expect_project(params.get("project"))
    elif op == "fix":
        allowed = {"pages", "apply", "oracle", "project"}
        extra = set(params) - allowed
        if extra:
            fail(f"unexpected fix parameter(s): {sorted(extra)}")
        if "pages" in params and params["pages"] is not None:
            expect_str_list("pages", params["pages"])
        for flag in ("apply", "oracle"):
            if flag in params and not isinstance(params[flag], bool):
                fail(f'"{flag}" must be a boolean')
        expect_project(params.get("project"))
    elif op == "invalidate":
        extra = set(params) - {"paths", "project"}
        if extra:
            fail(f"unexpected invalidate parameter(s): {sorted(extra)}")
        if "paths" not in params:
            fail('invalidate requires a "paths" parameter')
        expect_str_list("paths", params["paths"])
        expect_project(params.get("project"))
    elif op == "load_project":
        extra = set(params) - {"root", "name"}
        if extra:
            fail(f"unexpected load_project parameter(s): {sorted(extra)}")
        if not isinstance(params.get("root"), str):
            fail('load_project requires a "root" string')
        if "name" in params and not isinstance(params["name"], str):
            fail('"name" must be a string')
    elif op == "unload_project":
        if set(params) != {"name"} or not isinstance(params["name"], str):
            fail('unload_project takes exactly one parameter: "name" (string)')
    elif op == "metrics":
        extra = set(params) - {"format"}
        if extra:
            fail(f"unexpected metrics parameter(s): {sorted(extra)}")
        if "format" in params and params["format"] not in ("json", "prometheus"):
            fail('"format" must be "json" or "prometheus"')
    elif params:
        fail(f"{op} takes no parameters")


def ok_response(request_id, result) -> dict:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id, code: str, message: str) -> dict:
    return {"id": request_id, "ok": False,
            "error": {"code": code, "message": message}}


def encode(obj: dict) -> bytes:
    """One wire line: compact JSON + newline (the framing)."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_response(line: bytes | str) -> dict:
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    data = json.loads(line)
    if not isinstance(data, dict) or "ok" not in data:
        raise ProtocolError(INVALID_REQUEST, "response is not a protocol object")
    return data
