"""Client for the analysis daemon: a library class + ``sqlciv client``.

Library use::

    from repro.server import ServerClient

    with ServerClient(socket_path="/run/sqlciv.sock").connect() as client:
        response = client.analyze()
        print(response["pages_reanalyzed"], "pages re-analyzed")

CLI use mirrors the batch tool (``sqlciv client … analyze`` prints the
exact ``--json`` document and exits with the same 0/1/3 contract)::

    sqlciv client --socket /run/sqlciv.sock analyze --sarif out.sarif
    sqlciv client --socket /run/sqlciv.sock invalidate includes/db.php
    sqlciv client --socket /run/sqlciv.sock status
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time
from pathlib import Path

from . import protocol


class ServerError(Exception):
    """An error response from the daemon (or a dead connection)."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message


class ServerClient:
    """One connection to a daemon; requests are correlated by id."""

    def __init__(
        self,
        socket_path: str | Path | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        timeout: float = 600.0,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path or port is required")
        self.socket_path = str(socket_path) if socket_path else None
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock: socket.socket | None = None
        self._file = None
        self._id = 0

    # -- connection --------------------------------------------------------

    def connect(self, retry_seconds: float = 0.0) -> "ServerClient":
        """Connect, optionally retrying for up to ``retry_seconds`` —
        the idiom for scripts that just forked the daemon."""
        deadline = time.monotonic() + retry_seconds
        while True:
            try:
                self._sock = self._create_socket()
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        self._sock.settimeout(self.timeout)
        self._file = self._sock.makefile("rwb")
        return self

    def _create_socket(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return sock

    def close(self) -> None:
        if self._file is not None:
            try:
                self._file.close()
            except OSError:
                pass
            self._file = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServerClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- requests ----------------------------------------------------------

    def request(self, op: str, **params):
        """Send one request, return the ``result`` object; raises
        :class:`ServerError` on an error response."""
        if self._file is None:
            self.connect()
        self._id += 1
        payload = {"id": self._id, "op": op}
        payload.update(
            {key: value for key, value in params.items() if value is not None}
        )
        self._file.write(protocol.encode(payload))
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ServerError("disconnected", "daemon closed the connection")
        response = protocol.decode_response(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(
                error.get("code", "unknown"), error.get("message", "")
            )
        return response.get("result")

    # -- convenience wrappers ---------------------------------------------

    def analyze(self, pages=None, audit=None, sarif=None, project=None):
        return self.request(
            "analyze", pages=pages, audit=audit, sarif=sarif, project=project
        )

    def fix(self, pages=None, apply=None, oracle=None, project=None):
        return self.request(
            "fix", pages=pages, apply=apply, oracle=oracle, project=project
        )

    def invalidate(self, paths, project=None):
        return self.request("invalidate", paths=list(paths), project=project)

    def load_project(self, root, name=None):
        return self.request("load_project", root=str(root), name=name)

    def unload_project(self, name):
        return self.request("unload_project", name=name)

    def projects(self):
        return self.request("projects")

    def status(self):
        return self.request("status")

    def metrics(self, format: str | None = None):
        """Daemon metrics; ``format="prometheus"`` returns the text
        exposition (under ``"text"``) instead of the JSON snapshot."""
        return self.request("metrics", format=format)

    def ping(self):
        return self.request("ping")

    def shutdown(self):
        return self.request("shutdown")


def client_main(argv: list[str] | None = None) -> int:
    """The ``sqlciv client`` entry point."""
    parser = argparse.ArgumentParser(
        prog="sqlciv client",
        description="Talk to a running sqlciv analysis daemon.",
    )
    parser.add_argument("--socket", metavar="PATH",
                        help="daemon unix socket path")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, metavar="N")
    parser.add_argument("--timeout", type=float, default=600.0, metavar="S")
    parser.add_argument("--retry-seconds", type=float, default=0.0,
                        metavar="S",
                        help="keep retrying the connection for up to S "
                             "seconds (for scripts that just started the "
                             "daemon)")
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser(
        "analyze", help="analyze pages (default: the whole project); "
                        "prints the same JSON document as `sqlciv --json`"
    )
    analyze.add_argument("pages", nargs="*",
                         help="project-relative entry pages (default: all)")
    analyze.add_argument("--sarif", metavar="FILE",
                         help="also write the SARIF 2.1.0 log to FILE")
    analyze.add_argument("--no-audit", action="store_true",
                         help="skip the soundness audit (faster; the "
                              "document then differs from `sqlciv --json`, "
                              "which always audits)")
    analyze.add_argument("--project", metavar="NAME",
                         help="resident project to analyze (default: the "
                              "project the daemon was started on)")

    invalidate = commands.add_parser(
        "invalidate", help="tell the daemon these files changed on disk"
    )
    invalidate.add_argument("paths", nargs="+")
    invalidate.add_argument("--project", metavar="NAME",
                            help="resident project the paths belong to")

    load_project = commands.add_parser(
        "load-project", help="make another project resident in the daemon"
    )
    load_project.add_argument("root", help="project root directory")
    load_project.add_argument("--name", metavar="NAME",
                              help="project name (default: root basename)")

    unload_project = commands.add_parser(
        "unload-project", help="evict a resident project"
    )
    unload_project.add_argument("name")

    commands.add_parser(
        "projects", help="list the daemon's resident projects"
    )

    metrics = commands.add_parser(
        "metrics", help="perf counters/timers/gauges/histograms as JSON"
    )
    metrics.add_argument(
        "--prometheus", action="store_true",
        help="print the Prometheus text exposition instead of JSON "
             "(the same document --metrics-addr serves over HTTP)",
    )

    for name, help_text in (
        ("status", "one-line daemon state as JSON"),
        ("ping", "liveness check"),
        ("shutdown", "stop the daemon"),
    ):
        commands.add_parser(name, help=help_text)

    args = parser.parse_args(argv)
    if (args.socket is None) == (args.port is None):
        parser.error("exactly one of --socket or --port is required")

    client = ServerClient(
        socket_path=args.socket, host=args.host, port=args.port,
        timeout=args.timeout,
    )
    try:
        client.connect(retry_seconds=args.retry_seconds)
    except OSError as exc:
        print(f"cannot reach daemon: {exc}", file=sys.stderr)
        return 2

    try:
        with client:
            if args.command == "analyze":
                result = client.analyze(
                    pages=args.pages or None,
                    audit=False if args.no_audit else None,
                    sarif=True if args.sarif else None,
                    project=args.project,
                )
                print(json.dumps(result["document"], indent=2))
                if args.sarif:
                    Path(args.sarif).write_text(
                        result["sarif"] + "\n", encoding="utf-8"
                    )
                print(
                    f"{result['pages_reanalyzed']} page(s) re-analyzed, "
                    f"{result['pages_replayed']} replayed from memo",
                    file=sys.stderr,
                )
                return int(result["exit_code"])
            if args.command == "invalidate":
                result = client.invalidate(args.paths, project=args.project)
                print(json.dumps(result, indent=2))
                return 0
            if args.command == "load-project":
                result = client.load_project(args.root, name=args.name)
                print(json.dumps(result, indent=2))
                return 0
            if args.command == "unload-project":
                result = client.unload_project(args.name)
                print(json.dumps(result, indent=2))
                return 0
            if args.command == "metrics" and args.prometheus:
                result = client.metrics(format="prometheus")
                sys.stdout.write(result["text"])
                return 0
            result = client.request(args.command)
            print(json.dumps(result, indent=2))
            return 0
    except ServerError as exc:
        print(f"daemon error — {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(client_main())
