"""Concrete mini-interpreter for the supported PHP subset.

Executes one page under an :class:`InputVector` (sampled superglobal
contents) and records the exact string reaching every SQL sink as a
:class:`ConcreteHit`.  Strings carry character-precise taint
(:class:`TStr` — a sequence of :class:`Seg` runs), so the differential
checker can ask :func:`repro.sql.confinement.check_confinement` about
exactly the substring that came from an untrusted source.

The interpreter is a *consistency mirror* of the abstract one
(:mod:`repro.analysis.stringtaint`), not a faithful PHP: wherever full
PHP semantics and the analysis's modeled subset disagree in ways the
analysis knowingly abstracts (loose numeric string comparison, ``break``
inside loop bodies, reference semantics of ``global``), the interpreter
either adopts the analysis's deterministic subset semantics — when that
subset is *sound* for real programs staying inside it — or refuses with
:class:`UnsupportedConstruct` so the fuzzer skips the input instead of
reporting a phantom divergence.  The rules, each mirrored from a
specific analysis decision:

* string values coerce through :func:`repro.php.builtins.to_php_str`
  and the concrete builtin registry :data:`repro.php.builtins.CONCRETE`
  — the same module that defines the abstract models, so the two cannot
  drift without a visible diff;
* ``==`` compares numerically only when *both* operands are native
  numbers, otherwise by string — the refinement
  (``_refine_equality``) pins a variable to the literal's exact text,
  which is only consistent with string comparison;
* predicate truth (``preg_match``, ``is_numeric``, …) comes from the
  very languages branch refinement intersects with;
* ``break``/``continue`` inside loop bodies raise
  :class:`UnsupportedConstruct` (the analysis treats them as no-op
  joins, which its φ-headers do not cover); inside ``switch`` a
  *top-level* ``break`` ends the case, exactly like
  ``_exec_until_break``;
* loops stop silently at :data:`LOOP_CAP` iterations — every captured
  hit is a real prefix execution whose state the loop φ-header covers;
* recursion or call depth past ``MAX_CALL_DEPTH``, unknown functions,
  and unknown methods return an untainted ``""`` — a member of the
  analysis's Σ* result that *under*-taints it, which can only suppress
  confinement obligations, never invent them;
* arithmetic whose printed form escapes the analysis's
  ``-?[0-9]+(\\.[0-9]+)?`` arithmetic language (division by zero,
  overflow to exponent notation) raises :class:`UnsupportedConstruct`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import sources
from repro.analysis.stringtaint import MAX_CALL_DEPTH
from repro.lang.grammar import DIRECT, INDIRECT
from repro.php import ast, builtins
from repro.php.builtins import (
    CONCRETE,
    NO_EFFECT,
    ConcreteState,
    php_bool,
    php_float,
    php_float_str,
    php_int,
    php_sprintf,
    php_substr,
    to_php_str,
)
from repro.php.includes import IncludeResolver
from repro.php.parser import PhpParseError, parse

#: loop iterations before the interpreter silently stops the loop
LOOP_CAP = 64
#: total eval/exec steps before the execution is abandoned
STEP_BUDGET = 200_000

#: (path, source) → parsed AST (or None for unparseable files); bounded,
#: cleared wholesale on overflow.  See :meth:`Interpreter._parse`.
_AST_MEMORY: dict[tuple[str, str], "ast.File | None"] = {}
_AST_MEMORY_CAP = 256
_AST_MISS = object()

_ARITH_LANGUAGE = re.compile(r"-?[0-9]+(\.[0-9]+)?\Z")


class UnsupportedConstruct(Exception):
    """The page left the consistency-mirrored subset; skip this input."""


class _Exit(Exception):
    """``exit``/``die`` — ends the whole page."""


class _Return(Exception):
    def __init__(self, value) -> None:
        super().__init__()
        self.value = value


class _BreakSignal(Exception):
    pass


class _ContinueSignal(Exception):
    pass


# ---------------------------------------------------------------------------
# taint-annotated strings
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Seg:
    """A run of characters with uniform taint.  ``exact`` is False when
    the run's *extent* is a conservative blur (e.g. a charwise builtin
    self-check failed): membership still holds for the full string, but
    confinement cross-checks skip inexact runs."""

    text: str
    labels: frozenset[str] = frozenset()
    exact: bool = True


class TStr:
    """An immutable taint-annotated string."""

    __slots__ = ("segs",)

    def __init__(self, segs) -> None:
        merged: list[Seg] = []
        for seg in segs:
            if not seg.text:
                continue
            if (
                merged
                and merged[-1].labels == seg.labels
                and merged[-1].exact == seg.exact
            ):
                merged[-1] = Seg(
                    merged[-1].text + seg.text, seg.labels, seg.exact
                )
            else:
                merged.append(seg)
        self.segs: tuple[Seg, ...] = tuple(merged)

    @staticmethod
    def of(text: str, labels: frozenset[str] = frozenset(), exact: bool = True) -> "TStr":
        return TStr([Seg(text, labels, exact)])

    @property
    def text(self) -> str:
        return "".join(seg.text for seg in self.segs)

    @property
    def labels(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for seg in self.segs:
            out |= seg.labels
        return out

    def concat(self, other: "TStr") -> "TStr":
        return TStr(self.segs + other.segs)

    def slice(self, lo: int, hi: int) -> "TStr":
        out: list[Seg] = []
        pos = 0
        for seg in self.segs:
            end = pos + len(seg.text)
            cut_lo = max(lo, pos)
            cut_hi = min(hi, end)
            if cut_lo < cut_hi:
                out.append(
                    Seg(seg.text[cut_lo - pos : cut_hi - pos], seg.labels, seg.exact)
                )
            pos = end
        return TStr(out)

    def reversed(self) -> "TStr":
        return TStr([Seg(s.text[::-1], s.labels, s.exact) for s in reversed(self.segs)])

    def tainted_runs(self) -> list[tuple[int, int, bool]]:
        """Maximal tainted spans as ``(lo, hi, exact)``."""
        runs: list[tuple[int, int, bool]] = []
        pos = 0
        for seg in self.segs:
            end = pos + len(seg.text)
            if seg.labels:
                if runs and runs[-1][1] == pos:
                    lo, _, exact = runs[-1]
                    runs[-1] = (lo, end, exact and seg.exact)
                else:
                    runs.append((pos, end, seg.exact))
            pos = end
        return runs

    def __repr__(self) -> str:
        return f"TStr({self.text!r})"


class PhpArray:
    """A concrete PHP array: insertion-ordered string keys.  ``default``
    mirrors the abstract domain's default slot — it is the value handed
    out for keys the vector/model covers uniformly (fetch rows)."""

    __slots__ = ("elements", "default", "next_index")

    def __init__(self, elements=None, default=None) -> None:
        self.elements: dict[str, object] = dict(elements or {})
        self.default = default
        self.next_index = 0
        for key in self.elements:
            if re.fullmatch(r"[0-9]+", key):
                self.next_index = max(self.next_index, int(key) + 1)

    def get(self, key: str):
        if key in self.elements:
            return self.elements[key]
        return self.default

    def push(self, value) -> None:
        self.elements[str(self.next_index)] = value
        self.next_index += 1

    def copy(self) -> "PhpArray":
        clone = PhpArray(self.elements, self.default)
        clone.next_index = self.next_index
        return clone

    def truthy(self) -> bool:
        return bool(self.elements) or self.default is not None


class PhpObject:
    __slots__ = ("class_name", "props")

    def __init__(self, class_name: str) -> None:
        self.class_name = class_name
        self.props: dict[str, object] = {}


def to_tstr(value) -> TStr:
    if isinstance(value, TStr):
        return value
    return TStr.of(to_php_str(plain(value)))


def plain(value):
    """Strip taint annotations: the representation builtins operate on."""
    if isinstance(value, TStr):
        return value.text
    if isinstance(value, PhpArray):
        return {key: plain(item) for key, item in value.elements.items()}
    if isinstance(value, PhpObject):
        return "Object"
    return value


def _value_labels(value) -> frozenset[str]:
    if isinstance(value, TStr):
        return value.labels
    if isinstance(value, PhpArray):
        labels: frozenset[str] = frozenset()
        for item in value.elements.values():
            labels |= _value_labels(item)
        if value.default is not None:
            labels |= _value_labels(value.default)
        return labels
    return frozenset()


def _truthy(value) -> bool:
    if isinstance(value, TStr):
        return php_bool(value.text)
    if isinstance(value, PhpArray):
        return value.truthy()
    if isinstance(value, PhpObject):
        return True
    return php_bool(value)


# ---------------------------------------------------------------------------
# inputs and outputs
# ---------------------------------------------------------------------------


@dataclass
class InputVector:
    """One sampled request: superglobal contents keyed by parameter."""

    get: dict[str, str] = field(default_factory=dict)
    post: dict[str, str] = field(default_factory=dict)
    cookie: dict[str, str] = field(default_factory=dict)
    session: dict[str, str] = field(default_factory=dict)
    seed: int = 0

    def as_dict(self) -> dict:
        return {
            "get": dict(self.get),
            "post": dict(self.post),
            "cookie": dict(self.cookie),
            "session": dict(self.session),
            "seed": self.seed,
        }

    @staticmethod
    def from_dict(data: dict) -> "InputVector":
        return InputVector(
            get=dict(data.get("get", {})),
            post=dict(data.get("post", {})),
            cookie=dict(data.get("cookie", {})),
            session=dict(data.get("session", {})),
            seed=int(data.get("seed", 0)),
        )


@dataclass
class ConcreteHit:
    """One concrete query observed at a sink."""

    file: str
    line: int
    sink: str
    query: str
    #: maximal tainted spans ``(lo, hi, exact)`` of ``query``
    runs: list[tuple[int, int, bool]]


_SERVER_FIXED = {
    "PHP_SELF": "/index.php",
    "SCRIPT_NAME": "/index.php",
    "REQUEST_METHOD": "GET",
    "SERVER_NAME": "localhost",
    "REMOTE_ADDR": "127.0.0.1",
}


class Env:
    __slots__ = ("variables",)

    def __init__(self, variables=None) -> None:
        self.variables: dict[str, object] = dict(variables or {})

    def get(self, name: str):
        return self.variables.get(name)

    def set(self, name: str, value) -> None:
        self.variables[name] = value

    def copy(self) -> "Env":
        return Env(self.variables)


# ---------------------------------------------------------------------------
# the interpreter
# ---------------------------------------------------------------------------


class Interpreter:
    def __init__(
        self,
        project_root: str | Path,
        vector: InputVector,
        state: ConcreteState | None = None,
        resolver: IncludeResolver | None = None,
        extra_sinks: dict[str, int] | None = None,
    ) -> None:
        self.project_root = Path(project_root)
        self.vector = vector
        self.state = state or ConcreteState(seed=vector.seed, clock=1_000_000_000)
        self.resolver = resolver or IncludeResolver(self.project_root)
        #: policy-declared sinks beyond the SQL query functions
        #: (name → sink argument index), e.g. the shell-command table
        #: when fuzzing ``--policy shell``
        self.extra_sinks = extra_sinks or {}
        self.hits: list[ConcreteHit] = []
        self.functions: dict[str, ast.FunctionDef] = {}
        self.classes: dict[str, ast.ClassDef] = {}
        self.constants: dict[str, object] = {}
        self.globals = Env()
        self.current_file = ""
        self.steps = 0
        self._included_once: set[Path] = set()
        self._include_stack: list[str] = []
        self._call_stack: list[str] = []
        self._fetch_counts: dict[tuple[str, int], int] = {}

    # -- entry --------------------------------------------------------------

    def run(self, entry: str | Path) -> list[ConcreteHit]:
        entry_path = Path(entry)
        if not entry_path.is_absolute():
            entry_path = self.project_root / entry_path
        tree = self._parse(entry_path)
        if tree is None:
            raise UnsupportedConstruct(f"cannot parse {entry_path}")
        try:
            self._interpret_file(tree, self.globals)
        except _Exit:
            pass
        return self.hits

    def _parse(self, path: Path) -> ast.File | None:
        try:
            source = path.read_text()
        except OSError:
            return None
        # Content-addressed AST memory shared by every interpreter in
        # the process: the fuzz loop executes each generated page once
        # per input vector, and without this the lexer+parser dominate
        # the execute stage.  ASTs are read-only after construction
        # (the analyzer already shares them across pages), so handing
        # out the same tree is safe.  Keying on the source text means a
        # rewritten file can never alias a stale tree.
        key = (str(path), source)
        cached = _AST_MEMORY.get(key, _AST_MISS)
        if cached is not _AST_MISS:
            return cached
        try:
            tree = parse(source, str(path))
        except (PhpParseError, ValueError):
            tree = None
        if len(_AST_MEMORY) >= _AST_MEMORY_CAP:
            _AST_MEMORY.clear()
        _AST_MEMORY[key] = tree
        return tree

    def _interpret_file(self, tree: ast.File, env: Env) -> None:
        previous = self.current_file
        self.current_file = tree.path
        self._include_stack.append(tree.path)
        try:
            self._collect_definitions(tree.body)
            self._exec_block(tree.body, env)
        except _Return:
            pass  # top-level return ends this file, not the page
        finally:
            self._include_stack.pop()
            self.current_file = previous

    def _collect_definitions(self, block: ast.Block) -> None:
        for stmt in ast.walk(block):
            if isinstance(stmt, ast.FunctionDef):
                self.functions.setdefault(stmt.name.lower(), stmt)
            elif isinstance(stmt, ast.ClassDef):
                self.classes.setdefault(stmt.name, stmt)

    def _tick(self) -> None:
        self.steps += 1
        if self.steps > STEP_BUDGET:
            raise UnsupportedConstruct("step budget exceeded")

    # -- statements ---------------------------------------------------------

    def _exec_block(self, block: ast.Block, env: Env) -> None:
        for stmt in block.statements:
            self._exec(stmt, env)

    def _exec(self, stmt: ast.Stmt, env: Env) -> None:
        self._tick()
        method = getattr(self, f"_exec_{type(stmt).__name__}", None)
        if method is not None:
            method(stmt, env)

    def _exec_Block(self, stmt: ast.Block, env: Env) -> None:
        self._exec_block(stmt, env)

    def _exec_ExprStmt(self, stmt: ast.ExprStmt, env: Env) -> None:
        self.eval(stmt.expr, env)

    def _exec_Echo(self, stmt: ast.Echo, env: Env) -> None:
        for value in stmt.values:
            self.eval(value, env)

    def _exec_InlineHtml(self, stmt: ast.InlineHtml, env: Env) -> None:
        pass

    def _exec_If(self, stmt: ast.If, env: Env) -> None:
        branches: list[tuple[ast.Expr | None, ast.Block]] = [
            (stmt.condition, stmt.then)
        ]
        branches.extend(stmt.elifs)
        for condition, body in branches:
            if condition is None or _truthy(self.eval(condition, env)):
                if condition is not None:
                    self._refine_taken(condition, env, positive=True)
                self._exec_block(body, env)
                return
            self._refine_taken(condition, env, positive=False)
        if stmt.orelse is not None:
            self._exec_block(stmt.orelse, env)

    def _exec_While(self, stmt: ast.While, env: Env) -> None:
        iterations = 0
        while _truthy(self.eval(stmt.condition, env)):
            iterations += 1
            if iterations > LOOP_CAP:
                return  # silent stop: state stays within the loop φ-header
            self._refine_taken(stmt.condition, env, positive=True)
            self._run_loop_body(stmt.body, env)

    def _exec_DoWhile(self, stmt: ast.DoWhile, env: Env) -> None:
        iterations = 0
        while True:
            iterations += 1
            if iterations > LOOP_CAP:
                return
            self._run_loop_body(stmt.body, env)
            if not _truthy(self.eval(stmt.condition, env)):
                return

    def _exec_For(self, stmt: ast.For, env: Env) -> None:
        for expr in stmt.init:
            self.eval(expr, env)
        iterations = 0
        while stmt.condition is None or _truthy(self.eval(stmt.condition, env)):
            iterations += 1
            if iterations > LOOP_CAP:
                return
            if stmt.condition is not None:
                self._refine_taken(stmt.condition, env, positive=True)
            self._run_loop_body(stmt.body, env)
            for expr in stmt.step:
                self.eval(expr, env)

    def _exec_Foreach(self, stmt: ast.Foreach, env: Env) -> None:
        subject = self.eval(stmt.subject, env)
        if not isinstance(subject, PhpArray):
            return
        for index, (key, value) in enumerate(list(subject.elements.items())):
            if index >= LOOP_CAP:
                return
            if stmt.key_var is not None:
                self._assign_to(stmt.key_var, TStr.of(key), env)
            self._assign_to(stmt.value_var, value, env)
            self._run_loop_body(stmt.body, env)

    def _run_loop_body(self, body: ast.Block, env: Env) -> None:
        try:
            self._exec_block(body, env)
        except (_BreakSignal, _ContinueSignal) as exc:
            # the analysis treats break/continue in loop bodies as no-op
            # joins its φ-headers do not cover — refuse, don't diverge
            raise UnsupportedConstruct("break/continue in loop body") from exc

    def _exec_Switch(self, stmt: ast.Switch, env: Env) -> None:
        subject = self.eval(stmt.subject, env)
        match_index: int | None = None
        default_index: int | None = None
        for index, (label, _) in enumerate(stmt.cases):
            if label is None:
                default_index = index
                continue
            if match_index is None and self._loose_eq(
                subject, self.eval(label, env)
            ):
                match_index = index
        if match_index is None:
            match_index = default_index
        if match_index is None:
            return
        label = stmt.cases[match_index][0]
        if label is not None:
            self._pin_equal(stmt.subject, label, env)
        # fallthrough, ended by a *top-level* break (like _exec_until_break;
        # a break nested deeper is invisible to the analysis)
        for _, case_block in stmt.cases[match_index:]:
            for case_stmt in case_block.statements:
                if isinstance(case_stmt, ast.Break):
                    return
                try:
                    self._exec(case_stmt, env)
                except _BreakSignal as exc:
                    raise UnsupportedConstruct("nested break in switch") from exc
        return

    def _exec_Break(self, stmt: ast.Break, env: Env) -> None:
        raise _BreakSignal()

    def _exec_Continue(self, stmt: ast.Continue, env: Env) -> None:
        raise _ContinueSignal()

    def _exec_Return(self, stmt: ast.Return, env: Env) -> None:
        value = self.eval(stmt.value, env) if stmt.value is not None else None
        raise _Return(value)

    def _exec_ExitStmt(self, stmt: ast.ExitStmt, env: Env) -> None:
        if stmt.value is not None:
            self.eval(stmt.value, env)
        raise _Exit()

    def _exec_GlobalDecl(self, stmt: ast.GlobalDecl, env: Env) -> None:
        # value aliasing only, like the analysis: writes do not propagate
        for name in stmt.names:
            value = self.globals.get(name)
            if value is None:
                value = TStr.of("")
                self.globals.set(name, value)
            env.set(name, value)

    def _exec_Include(self, stmt: ast.Include, env: Env) -> None:
        path_text = to_tstr(self.eval(stmt.path, env)).text
        current_dir = (
            Path(self.current_file).parent if self.current_file else self.project_root
        )
        file = self.resolver.candidate_names(current_dir).get(path_text)
        if file is None:
            return  # unresolved: nothing to execute (analysis: escaped include)
        if stmt.once and file in self._included_once:
            return
        self._included_once.add(file)
        tree = self._parse(file)
        if tree is None or tree.path in self._include_stack:
            return
        self._interpret_file(tree, env)

    def _exec_FunctionDef(self, stmt: ast.FunctionDef, env: Env) -> None:
        self.functions.setdefault(stmt.name.lower(), stmt)

    def _exec_ClassDef(self, stmt: ast.ClassDef, env: Env) -> None:
        self.classes.setdefault(stmt.name, stmt)

    # -- refinement mirror --------------------------------------------------

    def _refine_taken(self, condition: ast.Expr, env: Env, positive: bool) -> None:
        """Mirror ``_refine_equality``'s *taint drop*: when the analysis
        learns ``$v == 'lit'`` it rebinds ``$v`` to the untainted
        literal.  The concrete value's *text* already equals the literal
        on the taken branch, so only the taint annotation changes — the
        verdict cross-check must see the same untainted span the
        analysis reasons about.  Negative equality (complement-DFA
        refinement) keeps taint in the analysis, so it is a no-op here;
        likewise predicate refinements (language intersection)."""
        if isinstance(condition, ast.UnaryOp) and condition.op == "!":
            self._refine_taken(condition.operand, env, not positive)
            return
        if isinstance(condition, ast.Suppress):
            self._refine_taken(condition.operand, env, positive)
            return
        if isinstance(condition, ast.BinOp):
            if condition.op == "&&" and positive:
                self._refine_taken(condition.left, env, True)
                self._refine_taken(condition.right, env, True)
                return
            if condition.op == "||" and not positive:
                self._refine_taken(condition.left, env, False)
                self._refine_taken(condition.right, env, False)
                return
            if condition.op in ("==", "===") and positive:
                self._pin_equal(condition.left, condition.right, env)
                self._pin_equal(condition.right, condition.left, env)
                return
            if condition.op in ("!=", "!==", "<>") and not positive:
                self._pin_equal(condition.left, condition.right, env)
                self._pin_equal(condition.right, condition.left, env)
                return

    def _pin_equal(self, subject: ast.Expr, other: ast.Expr, env: Env) -> None:
        if not isinstance(subject, ast.Var) or not isinstance(other, ast.Literal):
            return
        if isinstance(other.value, bool) or other.value is None:
            return  # the analysis skips these too (type reasoning)
        text = (
            other.value
            if isinstance(other.value, str)
            else builtins._php_number_str(other.value)
        )
        env.set(subject.name, TStr.of(text))

    # -- expressions --------------------------------------------------------

    def eval(self, expr: ast.Expr | None, env: Env):
        if expr is None:
            return TStr.of("")
        self._tick()
        method = getattr(self, f"_eval_{type(expr).__name__}", None)
        if method is None:
            raise UnsupportedConstruct(type(expr).__name__)
        return method(expr, env)

    def _eval_Literal(self, expr: ast.Literal, env: Env):
        return expr.value if expr.value is not None else None

    def _eval_Var(self, expr: ast.Var, env: Env):
        superglobal = self._superglobal(expr.name)
        if superglobal is not None:
            return superglobal
        value = env.get(expr.name)
        return value if value is not None else TStr.of("")

    def _superglobal(self, name: str) -> PhpArray | None:
        if sources.superglobal_label(name) is None:
            return None
        vector = self.vector

        def tainted(table: dict[str, str], label: str) -> PhpArray:
            return PhpArray(
                {
                    key: TStr.of(text, frozenset({label}))
                    for key, text in table.items()
                }
            )

        if name in ("_GET", "HTTP_GET_VARS"):
            return tainted(vector.get, DIRECT)
        if name in ("_POST", "HTTP_POST_VARS"):
            return tainted(vector.post, DIRECT)
        if name in ("_COOKIE", "HTTP_COOKIE_VARS"):
            return tainted(vector.cookie, DIRECT)
        if name == "_REQUEST":
            merged = dict(vector.get)
            merged.update(vector.post)
            merged.update(vector.cookie)
            return tainted(merged, DIRECT)
        if name in ("_SESSION", "HTTP_SESSION_VARS"):
            return tainted(vector.session, INDIRECT)
        if name == "_SERVER":
            # deliberately untainted: under-tainting is the safe direction
            return PhpArray({k: TStr.of(v) for k, v in _SERVER_FIXED.items()})
        return PhpArray({})  # _FILES

    def _eval_ArrayDim(self, expr: ast.ArrayDim, env: Env):
        base = self.eval(expr.base, env)
        key = (
            to_php_str(plain(self.eval(expr.index, env)))
            if expr.index is not None
            else None
        )
        if isinstance(base, PhpArray):
            value = base.get(key) if key is not None else None
            return value if value is not None else TStr.of("")
        if isinstance(base, TStr):
            index = php_int(key)
            if 0 <= index < len(base.text):
                return base.slice(index, index + 1)
            return TStr.of("")
        return TStr.of("")

    def _eval_Prop(self, expr: ast.Prop, env: Env):
        base = self.eval(expr.base, env)
        if isinstance(base, PhpObject):
            value = base.props.get(expr.name)
            if value is not None:
                return value
        return TStr.of("")

    def _eval_Interp(self, expr: ast.Interp, env: Env):
        result = TStr.of("")
        for part in expr.parts:
            result = result.concat(to_tstr(self.eval(part, env)))
        return result

    def _eval_BinOp(self, expr: ast.BinOp, env: Env):
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        op = expr.op
        if op == ".":
            return to_tstr(left).concat(to_tstr(right))
        if op in ("+", "-", "*", "/", "%", "<<", ">>"):
            return self._arith(op, left, right)
        if op in ("==", "==="):
            return self._loose_eq(left, right)
        if op in ("!=", "!==", "<>"):
            return not self._loose_eq(left, right)
        if op in ("&&", "and"):
            return _truthy(left) and _truthy(right)
        if op in ("||", "or"):
            return _truthy(left) or _truthy(right)
        if op == "xor":
            return _truthy(left) != _truthy(right)
        if op in ("<", ">", "<=", ">="):
            return self._compare(op, left, right)
        raise UnsupportedConstruct(f"operator {op}")

    def _arith(self, op: str, left, right):
        a, b = plain(left), plain(right)
        if isinstance(a, dict) or isinstance(b, dict):
            raise UnsupportedConstruct("array arithmetic")
        if op in ("<<", ">>", "%"):
            x, y = php_int(a), php_int(b)
            if op == "%" and y == 0:
                raise UnsupportedConstruct("modulo by zero")
            if op == "<<":
                result: int | float = x << (y % 64)
            elif op == ">>":
                result = x >> (y % 64)
            else:
                sign = -1 if x < 0 else 1
                result = sign * (abs(x) % abs(y))
        else:
            use_int = (
                isinstance(a, (int, bool))
                and isinstance(b, (int, bool))
                and op != "/"
            )
            x2, y2 = php_float(a), php_float(b)
            if op == "/" and y2 == 0:
                raise UnsupportedConstruct("division by zero")
            if op == "+":
                result = x2 + y2
            elif op == "-":
                result = x2 - y2
            elif op == "*":
                result = x2 * y2
            else:
                result = x2 / y2
            if use_int and float(result).is_integer():
                result = int(result)
        text = php_float_str(float(result)) if isinstance(result, float) else str(result)
        if not _ARITH_LANGUAGE.fullmatch(text):
            raise UnsupportedConstruct(f"arithmetic escapes numeric language: {text}")
        return result

    def _loose_eq(self, left, right) -> bool:
        # numeric only when BOTH operands are native numbers; otherwise
        # string comparison — the subset consistent with _refine_equality
        if isinstance(left, (int, float)) and not isinstance(left, bool) and isinstance(
            right, (int, float)
        ) and not isinstance(right, bool):
            return float(left) == float(right)
        return to_php_str(plain(left)) == to_php_str(plain(right))

    def _compare(self, op: str, left, right) -> bool:
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            a, b = float(left), float(right)
        else:
            a2, b2 = to_php_str(plain(left)), to_php_str(plain(right))
            if op == "<":
                return a2 < b2
            if op == ">":
                return a2 > b2
            if op == "<=":
                return a2 <= b2
            return a2 >= b2
        if op == "<":
            return a < b
        if op == ">":
            return a > b
        if op == "<=":
            return a <= b
        return a >= b

    def _eval_UnaryOp(self, expr: ast.UnaryOp, env: Env):
        operand = self.eval(expr.operand, env)
        if expr.op == "!":
            return not _truthy(operand)
        if expr.op == "-":
            return self._arith("-", 0, operand)
        if expr.op == "+":
            return self._arith("+", 0, operand)
        raise UnsupportedConstruct(f"unary {expr.op}")

    def _eval_Suppress(self, expr: ast.Suppress, env: Env):
        return self.eval(expr.operand, env)

    def _eval_Cast(self, expr: ast.Cast, env: Env):
        operand = self.eval(expr.operand, env)
        if expr.kind == "int":
            return php_int(plain(operand))
        if expr.kind == "float":
            value = php_float(plain(operand))
            if not _ARITH_LANGUAGE.fullmatch(php_float_str(value)):
                raise UnsupportedConstruct("float cast escapes numeric language")
            return value
        if expr.kind == "bool":
            return _truthy(operand)
        if expr.kind == "string":
            return to_tstr(operand)
        if expr.kind == "array":
            if isinstance(operand, PhpArray):
                return operand
            return PhpArray({"0": to_tstr(operand)})
        return operand

    def _eval_Assign(self, expr: ast.Assign, env: Env):
        value = self.eval(expr.value, env)
        if expr.op == ".=":
            current = to_tstr(self.eval(expr.target, env))
            value = current.concat(to_tstr(value))
        elif expr.op != "=":
            value = self._arith(expr.op.rstrip("="), self.eval(expr.target, env), value)
        self._assign_to(expr.target, value, env)
        return value

    def _assign_to(self, target: ast.Expr, value, env: Env) -> None:
        if isinstance(target, ast.Var):
            env.set(target.name, value)
            return
        if isinstance(target, ast.ArrayDim) and isinstance(target.base, ast.Var):
            base = env.get(target.base.name)
            base = base.copy() if isinstance(base, PhpArray) else PhpArray()
            if target.index is None:
                base.push(value)
            else:
                key = to_php_str(plain(self.eval(target.index, env)))
                base.elements[key] = value
            env.set(target.base.name, base)
            return
        if isinstance(target, ast.Prop) and isinstance(target.base, ast.Var):
            obj = env.get(target.base.name)
            if isinstance(obj, PhpObject):
                obj.props[target.name] = value
            return
        # other targets: dropped, like the analysis

    def _eval_Ternary(self, expr: ast.Ternary, env: Env):
        condition_value = self.eval(expr.condition, env)
        if _truthy(condition_value):
            self._refine_taken(expr.condition, env, positive=True)
            if expr.if_true is None:
                return condition_value
            return self.eval(expr.if_true, env)
        self._refine_taken(expr.condition, env, positive=False)
        return self.eval(expr.if_false, env)

    def _eval_IssetExpr(self, expr: ast.IssetExpr, env: Env):
        for target in expr.targets:
            if not self._defined(target, env):
                return False
        return True

    def _defined(self, target: ast.Expr, env: Env) -> bool:
        if isinstance(target, ast.Var):
            if sources.superglobal_label(target.name) is not None:
                return True
            return env.get(target.name) is not None
        if isinstance(target, ast.ArrayDim):
            base = self.eval(target.base, env)
            if not isinstance(base, PhpArray) or target.index is None:
                return False
            key = to_php_str(plain(self.eval(target.index, env)))
            return base.get(key) is not None
        if isinstance(target, ast.Prop):
            base = self.eval(target.base, env)
            return isinstance(base, PhpObject) and target.name in base.props
        return False

    def _eval_EmptyExpr(self, expr: ast.EmptyExpr, env: Env):
        if not self._defined(expr.target, env):
            return True
        return not _truthy(self.eval(expr.target, env))

    def _eval_ArrayLit(self, expr: ast.ArrayLit, env: Env):
        result = PhpArray()
        for key_node, value_node in expr.items:
            value = self.eval(value_node, env)
            if key_node is None:
                result.push(value)
            else:
                key = to_php_str(plain(self.eval(key_node, env)))
                result.elements[key] = value
                if re.fullmatch(r"[0-9]+", key):
                    result.next_index = max(result.next_index, int(key) + 1)
        return result

    def _eval_ConstFetch(self, expr: ast.ConstFetch, env: Env):
        if expr.name in self.constants:
            return self.constants[expr.name]
        return TStr.of(expr.name)

    def _eval_New(self, expr: ast.New, env: Env):
        arg_values = [self.eval(arg, env) for arg in expr.args]
        obj = PhpObject(expr.class_name)
        class_def = self.classes.get(expr.class_name)
        if class_def is not None:
            for prop_name, default in class_def.properties:
                obj.props[prop_name] = (
                    self.eval(default, env) if default is not None else TStr.of("")
                )
            constructor = self._find_method(class_def, expr.class_name) or self._find_method(
                class_def, "__construct"
            )
            if constructor is not None:
                self._call_function(constructor, arg_values, env, this=obj)
        return obj

    def _find_method(self, class_def: ast.ClassDef, name: str) -> ast.FunctionDef | None:
        for method in class_def.methods:
            if method.name.lower() == name.lower():
                return method
        parent = self.classes.get(class_def.parent) if class_def.parent else None
        if parent is not None:
            return self._find_method(parent, name)
        return None

    # -- calls --------------------------------------------------------------

    def _eval_Call(self, expr: ast.Call, env: Env):
        name = expr.name
        if name == "exit" or name == "die":
            for arg in expr.args:
                self.eval(arg, env)
            raise _Exit()
        if name in ("include", "include_once", "require", "require_once"):
            self._exec_Include(
                ast.Include(
                    path=expr.args[0] if expr.args else None,
                    once=name.endswith("_once"),
                    required=name.startswith("require"),
                    line=expr.line,
                ),
                env,
            )
            return TStr.of("1")
        arg_values = [self.eval(arg, env) for arg in expr.args]

        if name == "define" and len(expr.args) >= 2:
            constant_name = builtins.literal_str(expr.args[0])
            if constant_name is not None:
                self.constants[constant_name] = arg_values[1]
            return True
        if name == "constant" and expr.args:
            constant_name = builtins.literal_str(expr.args[0])
            if constant_name is not None and constant_name in self.constants:
                return self.constants[constant_name]
            return TStr.of("")
        if name == "defined" and expr.args:
            constant_name = builtins.literal_str(expr.args[0])
            return constant_name is not None and constant_name in self.constants

        sink_index = sources.query_argument_index(name)
        if sink_index is not None:
            self._record_hit(expr.line, name, arg_values, sink_index)
            return TStr.of("")

        extra_index = self.extra_sinks.get(name)
        if extra_index is not None:
            # record and return untainted "" — same shape as the unknown
            # builtin below; nothing real is executed
            self._record_hit(expr.line, name, arg_values, extra_index)
            return TStr.of("")

        fetch_shape = sources.is_fetch_function(name)
        if fetch_shape is not None:
            return self._fetch_result(expr.line, fetch_shape)

        user = self.functions.get(name)
        if user is not None:
            return self._call_function(user, arg_values, env)

        return self._call_builtin(name, arg_values, expr.args)

    def _eval_MethodCall(self, expr: ast.MethodCall, env: Env):
        obj = self.eval(expr.obj, env)
        arg_values = [self.eval(arg, env) for arg in expr.args]
        if sources.is_query_method(expr.name):
            self._record_hit(expr.line, f"->{expr.name}", arg_values, 0)
            return TStr.of("")
        if sources.is_fetch_method(expr.name):
            return self._fetch_result(expr.line, "array")
        if isinstance(obj, PhpObject):
            class_def = self.classes.get(obj.class_name)
            if class_def is not None:
                method = self._find_method(class_def, expr.name)
                if method is not None:
                    return self._call_function(method, arg_values, env, this=obj)
        return TStr.of("")  # unknown method: untainted member of the Σ* model

    def _eval_StaticCall(self, expr: ast.StaticCall, env: Env):
        arg_values = [self.eval(arg, env) for arg in expr.args]
        class_def = self.classes.get(expr.class_name)
        if class_def is not None:
            method = self._find_method(class_def, expr.name)
            if method is not None:
                return self._call_function(method, arg_values, env)
        return TStr.of("")

    def _fetch_result(self, line: int, shape: str):
        key = (self.current_file, line)
        count = self._fetch_counts.get(key, 0)
        self._fetch_counts[key] = count + 1
        if count >= 1:
            return False  # result set exhausted
        cell = TStr.of("dbv", frozenset({INDIRECT}))
        if shape in ("array", "object"):
            return PhpArray({}, default=cell)
        return cell

    def _call_function(
        self,
        definition: ast.FunctionDef,
        arg_values: list,
        caller_env: Env,
        this: PhpObject | None = None,
    ):
        if (
            definition.name.lower() in self._call_stack
            or len(self._call_stack) >= MAX_CALL_DEPTH
        ):
            return TStr.of("")  # analysis: Σ*+taint; "" is an untainted member
        local = Env()
        if this is not None:
            local.set("this", this)
        for index, param in enumerate(definition.params):
            if index < len(arg_values):
                local.set(param.name, arg_values[index])
            elif param.default is not None:
                local.set(param.name, self.eval(param.default, caller_env))
            else:
                local.set(param.name, TStr.of(""))
        self._call_stack.append(definition.name.lower())
        try:
            self._exec_block(definition.body, local)
        except _Return as ret:
            return ret.value if ret.value is not None else TStr.of("")
        finally:
            self._call_stack.pop()
        return TStr.of("")

    def _record_hit(self, line: int, sink: str, arg_values: list, sink_index: int) -> None:
        if sink_index >= len(arg_values):
            return
        query = to_tstr(arg_values[sink_index])
        self.hits.append(
            ConcreteHit(
                file=self.current_file,
                line=line,
                sink=sink,
                query=query.text,
                runs=query.tainted_runs(),
            )
        )

    # -- builtins -----------------------------------------------------------

    def _call_builtin(self, name: str, arg_values: list, nodes: list):
        if name in NO_EFFECT:
            return TStr.of("")
        woven = self._weave_builtin(name, arg_values, nodes)
        if woven is not _MISS:
            return woven
        spec = CONCRETE.get(name)
        if spec is None:
            # unknown function: analysis says Σ* + taint; an untainted ""
            # is a member that under-taints — the safe direction
            return TStr.of("")
        plain_args = [plain(v) for v in arg_values]
        try:
            result = spec.fn(plain_args, nodes, self.state)
        except (ValueError, OverflowError, ZeroDivisionError) as exc:
            raise UnsupportedConstruct(f"{name}: {exc}") from exc
        if spec.taint == "drop" or not isinstance(result, str):
            return TStr.of(result) if isinstance(result, str) else result
        if spec.taint == "whole":
            labels: frozenset[str] = frozenset()
            for value in arg_values:
                labels |= _value_labels(value)
            return TStr.of(result, labels)
        if spec.taint == "blur":
            subject = arg_values[spec.subject] if spec.subject < len(arg_values) else None
            labels = _value_labels(subject) if subject is not None else frozenset()
            return TStr.of(result, labels, exact=not labels)
        if spec.taint == "charwise":
            return self._charwise(name, spec, arg_values, plain_args, nodes, result)
        raise UnsupportedConstruct(f"{name}: unhandled taint mode {spec.taint}")

    def _charwise(self, name, spec, arg_values, plain_args, nodes, full_result):
        subject = (
            arg_values[spec.subject] if spec.subject < len(arg_values) else TStr.of("")
        )
        subject = to_tstr(subject)
        pieces: list[Seg] = []
        for seg in subject.segs:
            seg_args = list(plain_args)
            seg_args[spec.subject] = seg.text
            try:
                piece = spec.fn(seg_args, nodes, self.state)
            except (ValueError, OverflowError) as exc:
                raise UnsupportedConstruct(f"{name}: {exc}") from exc
            pieces.append(Seg(to_php_str(piece), seg.labels, seg.exact))
        woven = TStr(pieces)
        if woven.text == full_result:
            return woven
        # the function looked across segment boundaries (e.g. a replaced
        # substring straddles tainted and untrusted text): keep the true
        # text, blur the taint extent
        labels = subject.labels
        return TStr.of(full_result, labels, exact=not labels)

    # -- taint-weaving structural builtins ----------------------------------

    def _weave_builtin(self, name: str, arg_values: list, nodes: list):
        """Builtins whose result's taint is *woven* from argument spans
        (``ConcreteSpec.taint == "interp"``).  Returns :data:`_MISS` for
        every other builtin."""
        spec = CONCRETE.get(name)
        if spec is None or spec.taint != "interp":
            return _MISS
        handler = _WEAVERS.get(name)
        if handler is None:
            return _MISS
        return handler(self, arg_values, nodes)


_MISS = object()


def _blur_like(subject: TStr, text: str) -> TStr:
    labels = subject.labels
    return TStr.of(text, labels, exact=not labels)


def _slice_by_find(subject: TStr, result_text: str) -> TStr:
    if not result_text:
        return TStr.of("")
    index = subject.text.find(result_text)
    if index >= 0:
        return subject.slice(index, index + len(result_text))
    return _blur_like(subject, result_text)


def _arg(values: list, index: int, default=None):
    return values[index] if index < len(values) else default


def _w_trim(kind: str):
    def weave(interp: Interpreter, values: list, nodes: list):
        subject = to_tstr(_arg(values, 0, TStr.of("")))
        charlist = (
            to_php_str(plain(values[1])) if len(values) > 1 else None
        )
        chars = builtins.trim_charlist(charlist)
        text = subject.text
        lo, hi = 0, len(text)
        if kind in ("trim", "ltrim"):
            while lo < hi and text[lo] in chars:
                lo += 1
        if kind in ("trim", "rtrim"):
            while hi > lo and text[hi - 1] in chars:
                hi -= 1
        return subject.slice(lo, hi)

    return weave


def _w_substr(interp: Interpreter, values: list, nodes: list):
    subject = to_tstr(_arg(values, 0, TStr.of("")))
    text = subject.text
    start = php_int(plain(_arg(values, 1, 0)))
    length = php_int(plain(values[2])) if len(values) > 2 else None
    result = php_substr(text, start, length)
    if result == "":
        return TStr.of("")
    size = len(text)
    lo = max(0, size + start) if start < 0 else start
    return subject.slice(lo, lo + len(result))


def _w_strstr_family(find_kind: str):
    def weave(interp: Interpreter, values: list, nodes: list):
        haystack = to_tstr(_arg(values, 0, TStr.of("")))
        needle = to_php_str(plain(_arg(values, 1, "")))
        if not needle:
            return False
        text = haystack.text
        if find_kind == "stristr":
            index = text.lower().find(needle.lower())
        elif find_kind == "strrchr":
            index = text.rfind(needle[0])
        else:
            index = text.find(needle)
        if index < 0:
            return False
        before = (
            find_kind == "strstr"
            and len(values) > 2
            and _truthy(values[2])
        )
        return haystack.slice(0, index) if before else haystack.slice(index, len(text))

    return weave


def _w_strrev(interp: Interpreter, values: list, nodes: list):
    return to_tstr(_arg(values, 0, TStr.of(""))).reversed()


def _w_str_repeat(interp: Interpreter, values: list, nodes: list):
    subject = to_tstr(_arg(values, 0, TStr.of("")))
    count = max(0, php_int(plain(_arg(values, 1, 0))))
    if count * len(subject.text) > 100_000:
        raise UnsupportedConstruct("str_repeat result too large")
    result = TStr.of("")
    for _ in range(count):
        result = result.concat(subject)
    return result


def _w_str_pad(interp: Interpreter, values: list, nodes: list):
    subject = to_tstr(_arg(values, 0, TStr.of("")))
    length = php_int(plain(_arg(values, 1, 0)))
    pad = to_php_str(plain(values[2])) if len(values) > 2 else " "
    pad_type = (
        nodes[3].name
        if len(nodes) > 3 and isinstance(nodes[3], ast.ConstFetch)
        else "STR_PAD_RIGHT"
    )
    missing = length - len(subject.text)
    if missing <= 0 or not pad:
        return subject
    if pad_type == "STR_PAD_LEFT":
        return TStr.of((pad * missing)[:missing]).concat(subject)
    if pad_type == "STR_PAD_BOTH":
        left = missing // 2
        right = missing - left
        return (
            TStr.of((pad * left)[:left])
            .concat(subject)
            .concat(TStr.of((pad * right)[:right]))
        )
    return subject.concat(TStr.of((pad * missing)[:missing]))


def _format_piece(directive: str, spec: dict, value) -> TStr:
    """One sprintf directive as a TStr: ``%s`` splices the argument's
    spans, everything else renders untainted text."""
    if directive != "s":
        return TStr.of(builtins._format_directive(directive, spec, plain(value)))
    body = to_tstr(value)
    if spec["precision"] is not None:
        body = body.slice(0, spec["precision"])
    width = spec["width"]
    if width > len(body.text):
        pad = TStr.of((spec["pad"] or " ") * (width - len(body.text)))
        body = body.concat(pad) if "-" in spec["flags"] else pad.concat(body)
    return body


def _sprintf_weave(interp: Interpreter, fmt_value, fargs: list):
    fmt = to_tstr(fmt_value)
    if fmt.labels:
        # a tainted format: the model is Σ*+taint anyway — blur
        text = php_sprintf(fmt.text, [plain(a) for a in fargs])
        labels = fmt.labels
        for value in fargs:
            labels |= _value_labels(value)
        return TStr.of(text, labels, exact=False)
    fmt_text = fmt.text
    out = TStr.of("")
    arg_index = 0
    i = 0
    while i < len(fmt_text):
        char = fmt_text[i]
        if char == "%" and i + 1 < len(fmt_text):
            if fmt_text[i + 1] == "%":
                out = out.concat(TStr.of("%"))
                i += 2
                continue
            spec, directive, next_i = builtins.parse_sprintf_spec(fmt_text, i)
            if directive is None:
                out = out.concat(TStr.of(char))
                i += 1
                continue
            index = spec["argnum"] - 1 if spec["argnum"] else arg_index
            value = fargs[index] if index < len(fargs) else TStr.of("")
            out = out.concat(_format_piece(directive, spec, value))
            if not spec["argnum"]:
                arg_index += 1
            i = next_i
            continue
        out = out.concat(TStr.of(char))
        i += 1
    expected = php_sprintf(fmt_text, [plain(a) for a in fargs])
    if out.text != expected:
        labels = out.labels
        return TStr.of(expected, labels, exact=not labels)
    return out


def _w_sprintf(interp: Interpreter, values: list, nodes: list):
    return _sprintf_weave(interp, _arg(values, 0, TStr.of("")), values[1:])


def _w_vsprintf(interp: Interpreter, values: list, nodes: list):
    array_value = _arg(values, 1)
    fargs = (
        list(array_value.elements.values())
        if isinstance(array_value, PhpArray)
        else []
    )
    return _sprintf_weave(interp, _arg(values, 0, TStr.of("")), fargs)


def _w_implode(interp: Interpreter, values: list, nodes: list):
    glue_value = _arg(values, 0)
    pieces_value = _arg(values, 1)
    if isinstance(glue_value, PhpArray) and not isinstance(pieces_value, PhpArray):
        glue_value, pieces_value = pieces_value, glue_value
    if not isinstance(pieces_value, PhpArray):
        return to_tstr(pieces_value) if pieces_value is not None else TStr.of("")
    glue = to_tstr(glue_value) if glue_value is not None else TStr.of("")
    out = TStr.of("")
    for index, item in enumerate(pieces_value.elements.values()):
        if index:
            out = out.concat(glue)
        out = out.concat(to_tstr(item))
    return out


def _pieces_to_array(subject: TStr, pieces: list[str], separators: list[int]) -> PhpArray:
    """Contiguous split pieces back to spans of ``subject``.
    ``separators[i]`` is the separator length *after* piece ``i``."""
    result = PhpArray()
    position = 0
    text = subject.text
    for index, piece in enumerate(pieces):
        if text[position : position + len(piece)] != piece:
            return PhpArray(
                {
                    str(i): _blur_like(subject, p)
                    for i, p in enumerate(pieces)
                }
            )
        result.push(subject.slice(position, position + len(piece)))
        position += len(piece)
        if index < len(separators):
            position += separators[index]
    return result


def _w_explode(interp: Interpreter, values: list, nodes: list):
    delimiter = to_php_str(plain(_arg(values, 0, "")))
    subject = to_tstr(_arg(values, 1, TStr.of("")))
    limit = php_int(plain(values[2])) if len(values) > 2 else None
    pieces = builtins.php_explode(delimiter, subject.text, limit)
    if pieces is False:
        return False
    return _pieces_to_array(subject, pieces, [len(delimiter)] * (len(pieces)))


def _w_str_split(interp: Interpreter, values: list, nodes: list):
    subject = to_tstr(_arg(values, 0, TStr.of("")))
    length = php_int(plain(values[1])) if len(values) > 1 else 1
    if length < 1:
        return False
    result = PhpArray()
    text = subject.text
    if not text:
        result.push(TStr.of(""))
        return result
    for i in range(0, len(text), length):
        result.push(subject.slice(i, i + length))
    return result


def _w_regex_split(php_pattern: bool):
    def weave(interp: Interpreter, values: list, nodes: list):
        pattern_text = to_php_str(plain(_arg(values, 0, "")))
        subject = to_tstr(_arg(values, 1, TStr.of("")))
        try:
            pattern = (
                builtins.compile_php_pattern(pattern_text)
                if php_pattern
                else re.compile(pattern_text)
            )
        except (ValueError, re.error) as exc:
            raise UnsupportedConstruct(f"split pattern: {exc}") from exc
        text = subject.text
        pieces: list[str] = []
        separators: list[int] = []
        position = 0
        for match in pattern.finditer(text):
            if match.end() == match.start():
                # zero-width separators make offsets ambiguous
                return _pieces_to_array(subject, pattern.split(text), [])
            pieces.append(text[position : match.start()])
            separators.append(match.end() - match.start())
            position = match.end()
        pieces.append(text[position:])
        return _pieces_to_array(subject, pieces, separators)

    return weave


def _w_strval(interp: Interpreter, values: list, nodes: list):
    return to_tstr(_arg(values, 0, TStr.of("")))


def _w_basename(interp: Interpreter, values: list, nodes: list):
    subject = to_tstr(_arg(values, 0, TStr.of("")))
    suffix = to_php_str(plain(values[1])) if len(values) > 1 else ""
    return _slice_by_find(subject, builtins.php_basename(subject.text, suffix))


def _w_dirname(interp: Interpreter, values: list, nodes: list):
    subject = to_tstr(_arg(values, 0, TStr.of("")))
    return _slice_by_find(subject, builtins.php_dirname(subject.text))


def _w_pathinfo(interp: Interpreter, values: list, nodes: list):
    subject = to_tstr(_arg(values, 0, TStr.of("")))
    info = builtins.php_pathinfo(subject.text)
    return PhpArray(
        {key: _slice_by_find(subject, text) for key, text in info.items()}
    )


_WEAVERS = {
    "trim": _w_trim("trim"),
    "ltrim": _w_trim("ltrim"),
    "rtrim": _w_trim("rtrim"),
    "chop": _w_trim("rtrim"),
    "substr": _w_substr,
    "mb_substr": _w_substr,
    "strstr": _w_strstr_family("strstr"),
    "strchr": _w_strstr_family("strstr"),
    "stristr": _w_strstr_family("stristr"),
    "strrchr": _w_strstr_family("strrchr"),
    "strrev": _w_strrev,
    "str_repeat": _w_str_repeat,
    "str_pad": _w_str_pad,
    "sprintf": _w_sprintf,
    "vsprintf": _w_vsprintf,
    "implode": _w_implode,
    "join": _w_implode,
    "explode": _w_explode,
    "str_split": _w_str_split,
    "preg_split": _w_regex_split(php_pattern=True),
    "split": _w_regex_split(php_pattern=False),
    "strval": _w_strval,
    "basename": _w_basename,
    "dirname": _w_dirname,
    "pathinfo": _w_pathinfo,
}


def execute_page(
    project_root: str | Path,
    entry: str | Path,
    vector: InputVector,
    state: ConcreteState | None = None,
    resolver: IncludeResolver | None = None,
    extra_sinks: dict[str, int] | None = None,
) -> list[ConcreteHit]:
    """Run ``entry`` under ``vector``; returns the sink hits.

    Raises :class:`UnsupportedConstruct` when the page (or this
    particular execution) leaves the consistency-mirrored subset.
    """
    interpreter = Interpreter(
        project_root, vector, state=state, resolver=resolver,
        extra_sinks=extra_sinks,
    )
    return interpreter.run(entry)
