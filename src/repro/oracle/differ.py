"""Differential checker: concrete executions vs. the static analysis.

For one page the checker runs the abstract interpreter once, then
replays any number of concrete :class:`~repro.oracle.interp.InputVector`
executions against the result, asserting the two promises the analysis
makes:

1. **Membership** (soundness of the grammar, paper Theorem 3.4): every
   concrete string that reached a sink must be a member of *some*
   hotspot grammar recorded at that ``(file, line, sink)`` site.  The
   analysis may record the same syntactic site several times (once per
   refined condition polarity); the union of those grammars is the
   site's abstraction, so membership in any one suffices.
2. **Verdict** (soundness of the policy): when *every* report at the
   site is safe, each exactly-tracked tainted substring of the concrete
   query must be syntactically confined
   (:func:`repro.sql.confinement.check_confinement`).  Blurred (inexact)
   taint spans are skipped — their extent is conservative, not ground
   truth.

With ``policy="shell"`` the checker additionally enables the shell
sink policy in the static analysis, records concrete hits at the
``exec``/``system``/… sinks, and asserts the shell verdict: at a
statically-safe shell site no exact tainted span may be accepted by
:func:`repro.analysis.policies.shell.shell_breakout` (the rejected set
is closed under concatenation — its only non-accepting state is the
start state — so merged adjacent spans cannot produce false alarms).

A failure of either promise is a :class:`Divergence`.  The absence of
divergences proves nothing (the oracle witnesses unsoundness only);
their presence is always a bug in the analysis, the builtin models, or
the oracle's own mirror semantics — all three are worth knowing about.

Membership uses the character-level Earley lowering
(:func:`repro.lang.earley.char_token_grammar`), prepared once per
hotspot and reused across every vector — the CYK-based
``Grammar.generates`` is far too slow for a fuzzing loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.policy import VerdictCache, check_hotspot
from repro.analysis.stringtaint import StringTaintAnalysis
from repro.lang.earley import char_membership, char_token_grammar
from repro.sql.confinement import check_confinement

from .interp import ConcreteHit, InputVector, execute_page

#: divergence kinds, in decreasing severity
MISSING_HOTSPOT = "missing-hotspot"
MEMBERSHIP = "membership"
VERDICT = "verdict"


def _policy_extra_sinks(policy: str | None) -> dict[str, int] | None:
    """Concrete sink table for a differential policy mode."""
    if policy is None:
        return None
    if policy == "shell":
        from repro.analysis import sources

        return dict(sources.SHELL_FUNCTIONS)
    raise ValueError(f"unsupported differential policy: {policy!r}")


@dataclass
class Divergence:
    """One witnessed violation of an analysis promise."""

    kind: str  # MISSING_HOTSPOT | MEMBERSHIP | VERDICT
    file: str
    line: int
    sink: str
    query: str
    detail: str
    vector: dict = field(default_factory=dict)

    def render(self) -> str:
        return (
            f"[{self.kind}] {Path(self.file).name}:{self.line} ({self.sink})\n"
            f"  query:  {self.query!r}\n"
            f"  detail: {self.detail}\n"
            f"  vector: {self.vector!r}"
        )


class PageOracle:
    """Analysis result for one page, prepared for fast differential
    replay of concrete executions."""

    def __init__(
        self,
        project_root: str | Path,
        entry: str | Path,
        policy: str | None = None,
    ) -> None:
        self.project_root = Path(project_root)
        self.entry = entry
        self.policy = policy
        self.extra_sinks = _policy_extra_sinks(policy)
        policies = None
        if policy is not None:
            from repro.analysis.policies import PolicyConfig

            policies = PolicyConfig(enabled=("sql", policy))
        analysis = StringTaintAnalysis(self.project_root, policies=policies)
        self.result = analysis.analyze_file(entry)
        self.grammar = self.result.grammar
        # hotspots grouped by concrete-visible site identity
        self.sites: dict[tuple[str, int, str], list] = {}
        for spot in self.result.hotspots:
            self.sites.setdefault((spot.file, spot.line, spot.sink), []).append(spot)
        self._prepared: dict[int, tuple] = {}
        self._verdicts: dict[tuple[str, int, str], bool] = {}
        self._cache = VerdictCache()

    # -- lazy per-hotspot artifacts ----------------------------------------

    def _membership_grammar(self, spot):
        prepared = self._prepared.get(id(spot))
        if prepared is None:
            root = spot.query.nt
            scope = self.grammar.subgrammar(root).trim(root)
            prepared = char_token_grammar(scope, root)
            self._prepared[id(spot)] = prepared
        return prepared

    def _spot_verified(self, spot) -> bool:
        if spot.kind == "sql":
            return check_hotspot(self.grammar, spot, cache=self._cache).verified
        from repro.analysis.policies import policy_instance

        policy = policy_instance(spot.kind)
        return policy.check(self.grammar, spot, cache=self._cache).verified

    def _site_safe(self, key: tuple[str, int, str]) -> bool:
        """True iff every analysis report at this site is *safe*."""
        verdict = self._verdicts.get(key)
        if verdict is None:
            verdict = all(self._spot_verified(spot) for spot in self.sites[key])
            self._verdicts[key] = verdict
        return verdict

    # -- the two promises ---------------------------------------------------

    def check_hit(self, hit: ConcreteHit, vector: InputVector) -> list[Divergence]:
        key = (hit.file, hit.line, hit.sink)
        spots = self.sites.get(key)
        out: list[Divergence] = []
        if not spots:
            out.append(
                Divergence(
                    kind=MISSING_HOTSPOT,
                    file=hit.file,
                    line=hit.line,
                    sink=hit.sink,
                    query=hit.query,
                    detail=(
                        "concrete execution reached a sink the analysis "
                        f"recorded no hotspot for (static sites: "
                        f"{sorted(set((Path(f).name, ln) for f, ln, _ in self.sites))})"
                    ),
                    vector=vector.as_dict(),
                )
            )
            return out
        if not any(
            char_membership(self._membership_grammar(spot), hit.query)
            for spot in spots
        ):
            out.append(
                Divergence(
                    kind=MEMBERSHIP,
                    file=hit.file,
                    line=hit.line,
                    sink=hit.sink,
                    query=hit.query,
                    detail=(
                        f"concrete query is not a member of any of the "
                        f"{len(spots)} grammar(s) the analysis recorded here"
                    ),
                    vector=vector.as_dict(),
                )
            )
            return out
        if self._site_safe(key):
            # the static verdict checks the labeled substring languages,
            # so the concrete counterpart checks the tainted spans: SQL
            # sites via syntactic confinement, shell sites by running
            # the same breakout automaton the policy intersects with
            shell_site = any(spot.kind == "shell" for spot in spots)
            for lo, hi, exact in hit.runs:
                if not exact or lo == hi:
                    continue
                if shell_site:
                    from repro.analysis.policies.shell import shell_breakout

                    confined = not shell_breakout().accepts_string(
                        hit.query[lo:hi]
                    )
                    reason = (
                        f"tainted span {lo}..{hi} ({hit.query[lo:hi]!r}) "
                        "reaches an unquoted shell metacharacter or "
                        "unbalances quoting"
                    )
                else:
                    try:
                        confined = check_confinement(hit.query, lo, hi).confined
                    except ValueError as exc:
                        confined = False
                        reason = f"confinement check failed: {exc}"
                    else:
                        reason = (
                            f"tainted span {lo}..{hi} "
                            f"({hit.query[lo:hi]!r}) is not syntactically confined"
                        )
                if not confined:
                    out.append(
                        Divergence(
                            kind=VERDICT,
                            file=hit.file,
                            line=hit.line,
                            sink=hit.sink,
                            query=hit.query,
                            detail=f"analysis verdict is safe, but {reason}",
                            vector=vector.as_dict(),
                        )
                    )
        return out

    def check_vector(self, vector: InputVector) -> list[Divergence]:
        """Execute the page under ``vector`` and check every hit.

        Raises :class:`~repro.oracle.interp.UnsupportedConstruct` when
        the execution leaves the mirrored subset — callers skip those.
        """
        hits = execute_page(
            self.project_root, self.entry, vector, extra_sinks=self.extra_sinks
        )
        out: list[Divergence] = []
        for hit in hits:
            out.extend(self.check_hit(hit, vector))
        return out


def diff_page(
    project_root: str | Path,
    entry: str | Path,
    vectors: list[InputVector],
    stats: dict | None = None,
    policy: str | None = None,
) -> list[Divergence]:
    """Analyze ``entry`` once, replay every vector, return divergences.

    ``stats``, when given, accumulates ``vectors``, ``skipped`` (vectors
    that left the supported subset) and ``hits`` counts.  ``policy``
    enables a policy's sinks on both sides (see module docstring).
    """
    from .interp import UnsupportedConstruct

    oracle = PageOracle(project_root, entry, policy=policy)
    divergences: list[Divergence] = []
    skipped = 0
    hits = 0
    for vector in vectors:
        try:
            concrete_hits = execute_page(
                oracle.project_root, oracle.entry, vector,
                extra_sinks=oracle.extra_sinks,
            )
        except UnsupportedConstruct:
            skipped += 1
            continue
        hits += len(concrete_hits)
        for hit in concrete_hits:
            divergences.extend(oracle.check_hit(hit, vector))
    if stats is not None:
        stats["vectors"] = stats.get("vectors", 0) + len(vectors)
        stats["skipped"] = stats.get("skipped", 0) + skipped
        stats["hits"] = stats.get("hits", 0) + hits
    return divergences
