"""``sqlciv fuzz`` — the generative differential-soundness driver.

Each iteration samples a random page from the construct pools in
:func:`repro.corpus.generator.generate_fuzz_page`, samples a handful of
input vectors mixing attack-ish and benign strings, runs the static
analysis once and the concrete interpreter once per vector, and
cross-checks membership and verdicts (:mod:`repro.oracle.differ`).

On a divergence the driver shrinks the page to a minimal reproducer
(greedy line deletion — syntactically broken candidates are rejected
naturally because they cannot reproduce the divergence) and the vector
to its needed keys, then writes both plus a report into the artifacts
directory.

Every random decision flows through one ``random.Random(seed)``; the
same ``--seed`` reproduces the same corpus byte-for-byte on any
platform or Python version (the Mersenne generator's float and choice
sequences are stable).
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.corpus.generator import _FUZZ_PARAMS, generate_fuzz_page

from .differ import Divergence, PageOracle, diff_page
from .interp import InputVector, UnsupportedConstruct, execute_page

EXIT_CLEAN = 0
EXIT_DIVERGENCES = 1
EXIT_USAGE = 2

#: attacker-shaped values: quote/backslash/comment/union shapes
ATTACK_VALUES = [
    "' OR 1=1 --",
    "x'; DROP TABLE users; --",
    "a'b",
    "'",
    '"',
    "\\",
    "\\'",
    "1 UNION SELECT name FROM users",
    "%27",
    "a,b',c",
    "'--",
    "0; DELETE FROM log",
]

#: shell-breakout shapes mixed in under ``--policy shell``: unquoted
#: metacharacters, command substitution, quote splicing
SHELL_ATTACK_VALUES = [
    "; id",
    "| cat /etc/passwd",
    "$(id)",
    "`id`",
    "&& touch pwned",
    "'",
    "'; id; '",
    "a > out.txt",
    "\\",
]

#: values an honest user might send
BENIGN_VALUES = [
    "7",
    "42",
    "abc",
    "",
    "0",
    "red",
    "blue",
    "edit",
    "a,b,c",
    "hello world",
    "item9",
]


def sample_vector(rng: random.Random, policy: str | None = None) -> InputVector:
    attack_pool = ATTACK_VALUES
    if policy == "shell":
        attack_pool = ATTACK_VALUES + SHELL_ATTACK_VALUES

    def table() -> dict[str, str]:
        out: dict[str, str] = {}
        for key in _FUZZ_PARAMS:
            if rng.random() < 0.85:
                pool = attack_pool if rng.random() < 0.45 else BENIGN_VALUES
                out[key] = rng.choice(pool)
        return out

    return InputVector(
        get=table(),
        post=table(),
        cookie=table(),
        session=table(),
        seed=rng.randrange(1 << 30),
    )


@dataclass
class FuzzReport:
    iterations: int = 0
    vectors: int = 0
    skipped_vectors: int = 0
    hits: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    #: one outcome dict per divergence when ``--fix-check`` ran
    fix_checks: list[dict] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            f"fuzz: {self.iterations} pages, {self.vectors} vectors "
            f"({self.skipped_vectors} outside subset), "
            f"{self.hits} sink hits, {len(self.divergences)} divergence(s)"
        ]
        for divergence in self.divergences:
            lines.append(divergence.render())
        for outcome in self.fix_checks:
            lines.append(render_fix_check(outcome))
        return "\n".join(lines)


def render_fix_check(outcome: dict) -> str:
    if outcome.get("error"):
        return f"fix-check: engine error — {outcome['error']}"
    survives = outcome.get("survives")
    verdict = (
        "no verified patch"
        if survives is None
        else (
            "divergence SURVIVES the patch"
            if survives
            else "divergence eliminated by the patch"
        )
    )
    return (
        f"fix-check: {outcome.get('fixed', 0)} patched / "
        f"{outcome.get('unfixable', 0)} unfixable — {verdict}"
    )


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------


def _reproduces(
    app: Path, entry: str, vector: InputVector, kind: str,
    policy: str | None = None,
) -> bool:
    try:
        divergences = diff_page(app, entry, [vector], policy=policy)
    except Exception:
        return False
    return any(d.kind == kind for d in divergences)


def minimize_page(
    app: Path, entry: str, vector: InputVector, kind: str,
    policy: str | None = None,
) -> None:
    """Greedily delete page lines while the divergence reproduces."""
    page_path = app / entry
    for target in [app / "includes" / "clean.php", page_path]:
        if not target.exists():
            continue
        changed = True
        while changed:
            changed = False
            lines = target.read_text().splitlines()
            index = 1  # keep the `<?php` opener
            while index < len(lines):
                candidate = lines[:index] + lines[index + 1 :]
                target.write_text("\n".join(candidate) + "\n")
                if _reproduces(app, entry, vector, kind, policy=policy):
                    lines = candidate
                    changed = True
                else:
                    target.write_text("\n".join(lines) + "\n")
                    index += 1


def minimize_vector(
    app: Path, entry: str, vector: InputVector, kind: str,
    policy: str | None = None,
) -> InputVector:
    """Drop superglobal keys the reproduction does not need."""
    current = vector
    for attr in ("get", "post", "cookie", "session"):
        table = dict(getattr(current, attr))
        for key in list(table):
            trimmed = dict(table)
            del trimmed[key]
            candidate = InputVector(**{**current.as_dict(), attr: trimmed})
            if _reproduces(app, entry, candidate, kind, policy=policy):
                table = trimmed
                current = candidate
    return current


def _write_artifact(
    artifacts: Path,
    iteration: int,
    app: Path,
    entry: str,
    vector: InputVector,
    divergence: Divergence,
    policy: str | None = None,
    fix_outcome: dict | None = None,
) -> Path:
    target = artifacts / f"div_{iteration:04d}_{divergence.kind}"
    if target.exists():
        shutil.rmtree(target)
    shutil.copytree(app, target)
    (target / "vector.json").write_text(json.dumps(vector.as_dict(), indent=2))
    if policy:
        # the marker the regression-seed replayer reads to re-enable the
        # same policy mode (tests/oracle seeds)
        (target / "policy").write_text(policy + "\n")
    report = (
        divergence.render()
        + f"\n\nreplay: analyze {entry} and execute it under vector.json\n"
    )
    if fix_outcome is not None:
        report += render_fix_check(fix_outcome) + "\n"
        (target / "fix-check.json").write_text(
            json.dumps(fix_outcome, indent=2) + "\n"
        )
    (target / "report.txt").write_text(report)
    return target


def attempt_fix(
    app: Path,
    entry: str,
    vector: InputVector,
    kind: str,
    policy: str | None = None,
) -> dict:
    """Post-minimization remediation attempt (``--fix-check``).

    Runs the remediation engine over a copy of the minimized
    reproducer, applies whatever verifies, and replays the divergence
    on the patched tree.  ``survives`` is None when nothing verified,
    else whether the same divergence kind still reproduces — a
    divergence that survives a verified patch is a stronger soundness
    signal than the divergence alone (the engine's re-analysis agreed
    the finding was gone, yet the concrete behaviour persists).
    """
    outcome: dict = {"attempted": True, "fixed": 0, "unfixable": 0,
                     "survives": None}
    copy = Path(tempfile.mkdtemp(prefix="sqlciv-fixcheck-")) / "app"
    shutil.copytree(app, copy)
    try:
        from repro.remediate import remediate_project

        policies = None
        if policy:
            from repro.analysis.policies import PolicyConfig

            policies = PolicyConfig(enabled=("sql", policy))
        try:
            report = remediate_project(
                copy, pages=[entry], policies=policies, apply=True,
                oracle=False,
            )
        except Exception as exc:   # engine failure is a finding, not a crash
            outcome["error"] = f"{type(exc).__name__}: {exc}"
            return outcome
        outcome["fixed"] = len(report.fixed)
        outcome["unfixable"] = len(report.unfixable)
        outcome["statuses"] = [e.status for e in report.entries]
        if report.applied:
            outcome["survives"] = _reproduces(
                copy, entry, vector, kind, policy=policy
            )
        return outcome
    finally:
        shutil.rmtree(copy.parent, ignore_errors=True)


# ---------------------------------------------------------------------------
# the driver
# ---------------------------------------------------------------------------


def run_fuzz(
    iterations: int,
    seed: int,
    vectors_per_page: int = 4,
    statements: int = 10,
    minimize: bool = True,
    artifacts_dir: str | Path | None = None,
    progress_every: int = 25,
    log=print,
    policy: str | None = None,
    fix_check: bool = False,
) -> FuzzReport:
    rng = random.Random(seed)
    report = FuzzReport()
    artifacts = Path(artifacts_dir) if artifacts_dir else None
    for iteration in range(iterations):
        report.iterations += 1
        workdir = Path(tempfile.mkdtemp(prefix="sqlciv-fuzz-"))
        try:
            entry = generate_fuzz_page(
                workdir, rng, statements=statements, policy=policy
            )
            vectors = [
                sample_vector(rng, policy=policy)
                for _ in range(vectors_per_page)
            ]
            oracle = PageOracle(workdir, entry, policy=policy)
            found: list[tuple[InputVector, Divergence]] = []
            for vector in vectors:
                report.vectors += 1
                try:
                    hits = execute_page(
                        workdir, entry, vector, extra_sinks=oracle.extra_sinks
                    )
                except UnsupportedConstruct:
                    report.skipped_vectors += 1
                    continue
                report.hits += len(hits)
                divergences = []
                for hit in hits:
                    divergences.extend(oracle.check_hit(hit, vector))
                if divergences:
                    found.append((vector, divergences[0]))
            if found:
                vector, divergence = found[0]
                if minimize:
                    minimize_page(
                        workdir, entry, vector, divergence.kind, policy=policy
                    )
                    vector = minimize_vector(
                        workdir, entry, vector, divergence.kind, policy=policy
                    )
                    refreshed = diff_page(workdir, entry, [vector], policy=policy)
                    for candidate in refreshed:
                        if candidate.kind == divergence.kind:
                            divergence = candidate
                            break
                report.divergences.append(divergence)
                fix_outcome = None
                if fix_check:
                    fix_outcome = attempt_fix(
                        workdir, entry, vector, divergence.kind,
                        policy=policy,
                    )
                    report.fix_checks.append(fix_outcome)
                    log(render_fix_check(fix_outcome))
                if artifacts is not None:
                    artifacts.mkdir(parents=True, exist_ok=True)
                    where = _write_artifact(
                        artifacts, iteration, workdir, entry, vector,
                        divergence, policy=policy, fix_outcome=fix_outcome,
                    )
                    log(f"divergence at iteration {iteration}: saved {where}")
                else:
                    log(f"divergence at iteration {iteration}:")
                    log(divergence.render())
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
        if progress_every and (iteration + 1) % progress_every == 0:
            log(
                f"  … {iteration + 1}/{iterations} pages, "
                f"{len(report.divergences)} divergence(s)"
            )
    return report


def fuzz_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sqlciv fuzz",
        description=(
            "differential soundness fuzzing: random pages, concrete "
            "executions, grammar-membership and verdict cross-checks"
        ),
    )
    parser.add_argument("--iterations", type=int, default=100)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--vectors-per-page", type=int, default=4)
    parser.add_argument("--statements", type=int, default=10)
    parser.add_argument(
        "--policy",
        choices=["shell"],
        default=None,
        help=(
            "also fuzz a sink policy differentially: generated pages "
            "gain that policy's sinks, vectors gain matching attack "
            "shapes, and safe verdicts are cross-checked against the "
            "policy's danger automaton"
        ),
    )
    parser.add_argument(
        "--minimize",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="shrink divergent pages/vectors to minimal reproducers",
    )
    parser.add_argument(
        "--fix-check",
        action="store_true",
        help=(
            "after minimizing a divergence, run the remediation engine "
            "on the reproducer and report whether the divergence "
            "survives the verified patches"
        ),
    )
    parser.add_argument(
        "--artifacts-dir",
        default="fuzz-artifacts",
        help="where minimized reproducers are written",
    )
    try:
        options = parser.parse_args(argv)
    except SystemExit as exc:
        return EXIT_USAGE if exc.code not in (0,) else 0
    report = run_fuzz(
        iterations=options.iterations,
        seed=options.seed,
        vectors_per_page=options.vectors_per_page,
        statements=options.statements,
        minimize=options.minimize,
        artifacts_dir=options.artifacts_dir,
        policy=options.policy,
        fix_check=options.fix_check,
    )
    print(report.render())
    return EXIT_DIVERGENCES if report.divergences else EXIT_CLEAN
