"""Differential soundness oracle (ISSUE 5).

The static analysis promises (Theorem 3.4) that every string a page can
pass to a SQL sink is a member of the hotspot's grammar, and the policy
layer promises that a *safe* verdict means every tainted substring is
syntactically confined.  This package tests both promises dynamically:

* :mod:`repro.oracle.interp` — a concrete mini-interpreter for the
  supported PHP subset: executes a page under a sampled input vector,
  with real semantics for every builtin modeled in
  :mod:`repro.php.builtins`, and captures the exact (taint-annotated)
  string reaching each sink;
* :mod:`repro.oracle.differ` — runs analysis + interpreter on the same
  page and cross-checks membership and verdicts; any mismatch is a
  :class:`~repro.oracle.differ.Divergence`;
* :mod:`repro.oracle.fuzz` — the generative driver behind
  ``sqlciv fuzz``: random pages, random vectors, shrinking reproducers.

The oracle *witnesses unsoundness*; it can never prove soundness (see
DESIGN.md §5f).
"""

from .differ import Divergence, diff_page  # noqa: F401
from .interp import ConcreteHit, InputVector, UnsupportedConstruct, execute_page  # noqa: F401
