"""Farm worker processes: the execution side of the analysis farm.

Each worker owns one task queue and loops: take from its own queue
(FIFO — the driver placed the biggest tasks first), else **steal** the
front of the most convenient victim's queue, else sleep a couple of
milliseconds.  Three task kinds arrive:

``parse``
    An include/parse pre-pass chunk: parse files, publish the
    ``(tree, error)`` entries to the shared AST memo — so page analyses
    on *any* worker skip the parse entirely — and report the files'
    *static* include targets back to the driver, which fans newly
    discovered files out as further parse chunks.  The pre-pass thus
    covers the dependency closure of the entry pages (breadth-first,
    in parallel), not the whole project tree.
``page``
    One entry page.  Runs the exact :func:`_page_result` path (disk
    cache, phase 1, phase 2, audit) unless the page is *splittable*:
    with a live memo service, splitting enabled, and at least
    ``split_threshold`` hotspots, the worker stops after phase 1,
    publishes the pickled ``(grammar, hotspots)`` blob, and returns a
    partial result — the driver fans the hotspots back out as
    ``cascade`` tasks.
``cascade``
    One phase-2 check of one hotspot against a published blob.  The
    grammar's canonical fingerprint survives pickling, so the verdict
    (and its memo key) is identical wherever the cascade runs.

Every envelope carries the worker's :meth:`PERF.diff` for the task, so
the driver's merged counters are scheduling-invariant.  Workers keep
per-``(root, epoch)`` parse caches and resolvers — the daemon bumps a
project's epoch on invalidation, which conservatively discards the
worker-local state while all *shared* state stays valid by content
addressing.
"""

from __future__ import annotations

import os
import pickle
import queue
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.analysis import policy as _policy
from repro.analysis import stringtaint as _stringtaint
from repro.analysis.analyzer import (
    PageResult,
    _audit_result,
    _check_one,
    _page_result,
    _phase1_page,
    _relative_deps,
    _warm_worker_caches,
)
from repro.analysis.diskcache import DiskCache
from repro.lang import image as _image
from repro.obs.metrics import PERF
from repro.obs.timeline import TIMELINE, append_span
from repro.obs.trace import TRACE
from repro.php import ast as php_ast
from repro.php.includes import IncludeResolver

from .memo import AstMemo, BlobStore, ImageMemo, SharedMemoClient, VerdictMemo


@dataclass(frozen=True)
class BatchConfig:
    """Everything a task needs to know about its batch — picklable, and
    shipped inside every task so persistent workers can serve many
    projects (and many epochs of one project) interleaved."""

    root: str
    audit: bool
    cache_dir: str | None
    cache_max_mb: float | None
    project_state: str | None
    policies: object
    profile: bool
    trace: bool
    timeline: bool
    epoch: int
    #: hotspot count at which a page is split into cascade tasks;
    #: ``0`` disables splitting for the batch
    split_threshold: int
    #: unique per (driver pid, batch ordinal): namespaces blob keys
    batch_id: str


#: Worker-local analysis state per ``(root, epoch)``: parse cache,
#: include resolver, disk cache handle.  Bounded — a daemon-shared
#: worker may see many projects.
_PROJECT_ENVS: OrderedDict[tuple, dict] = OrderedDict()
_PROJECT_ENVS_CAP = 8

#: Policy digests whose automata this process already warmed.
_WARMED: set[str] = set()

#: Unpickled split-page blobs, keyed by blob key (a page's cascades all
#: land close together, and sharing the unpickled pair across them is
#: what keeps cascade tasks cheap).
_BLOB_CACHE: OrderedDict[str, tuple] = OrderedDict()
_BLOB_CACHE_CAP = 4


def _project_env(config: BatchConfig) -> dict:
    key = (config.root, config.epoch)
    env = _PROJECT_ENVS.get(key)
    if env is None:
        resolver = IncludeResolver(config.root)
        env = {
            "parse_cache": {},
            "resolver": resolver,
            "disk_cache": (
                DiskCache(config.cache_dir, max_mb=config.cache_max_mb)
                if config.cache_dir
                else None
            ),
            # resolver-visible file names, in the exact string form the
            # analysis hands to _parse — membership checks for pre-pass
            # include discovery
            "files": frozenset(str(p) for p in resolver.project_files()),
        }
        _PROJECT_ENVS[key] = env
        while len(_PROJECT_ENVS) > _PROJECT_ENVS_CAP:
            _PROJECT_ENVS.popitem(last=False)
    else:
        _PROJECT_ENVS.move_to_end(key)
    return env


def _warm_policies(config: BatchConfig) -> None:
    digest = config.policies.digest() if config.policies is not None else ""
    if digest not in _WARMED:
        _WARMED.add(digest)
        _warm_worker_caches(config.policies)


def _configure_obs(config: BatchConfig) -> None:
    if TRACE.enabled != config.trace:
        TRACE.configure(config.trace)
    if TIMELINE.enabled != config.timeline:
        TIMELINE.configure(config.timeline)


def _page_cache_key(config: BatchConfig, page: str) -> str | None:
    if config.project_state is None or not config.cache_dir:
        return None
    try:
        rel = str(Path(page).relative_to(config.root))
    except ValueError:
        rel = str(page)
    return DiskCache.page_key(
        config.project_state,
        config.root,
        rel,
        config.audit,
        policy_digest=(
            config.policies.digest() if config.policies is not None else ""
        ),
    )


def _profile_ipc(config: BatchConfig, result: PageResult) -> None:
    """The worker-side IPC accounting ``--profile`` opts into: the
    result is pickled once more by the queue machinery on the way home,
    and measuring our own dump attributes that cost to this page."""
    if not config.profile:
        return
    started = time.perf_counter()
    size = len(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
    finished = time.perf_counter()
    PERF.incr("ipc.page_results")
    PERF.incr("ipc.page_bytes_total", size)
    PERF.gauge("ipc.page_bytes.max", size)
    PERF.observe("ipc.page_bytes", size)
    PERF.add_time("ipc.pickle", finished - started)
    if result.timeline is not None:
        append_span(result.timeline, "pickle", started, finished, bytes=size)


def _run_page(task, stolen: bool, blobs: BlobStore | None, before):
    _, config, page, index = task
    _configure_obs(config)
    env = _project_env(config)
    _warm_policies(config)
    root = Path(config.root)
    splittable = (
        config.split_threshold > 0
        and blobs is not None
        and blobs.client.available
        and not config.trace
        and not config.timeline
    )
    if not splittable:
        result = _page_result(
            root,
            page,
            config.audit,
            env["parse_cache"],
            env["resolver"],
            env["disk_cache"],
            config.project_state,
            config.policies,
        )
        _profile_ipc(config, result)
        result.perf = None
        return ("page", index, result, PERF.diff(before), stolen)

    # Split-capable path (plain runs only: trace/timeline captures need
    # the whole page on one worker).  Mirrors _page_result_inner: disk
    # cache first, then phase 1, then either inline phase 2 (small
    # pages) or a published blob plus a partial result.
    disk_cache = env["disk_cache"]
    key = _page_cache_key(config, str(page))
    if disk_cache is not None and key is not None:
        cached = disk_cache.load("page", key)
        if isinstance(cached, PageResult):
            PERF.incr("policy.checks_avoided", len(cached.reports))
            PERF.incr("pages.from_disk_cache")
            cached.from_cache = True
            cached.perf = None
            _profile_ipc(config, cached)
            return ("page", index, cached, PERF.diff(before), stolen)

    result, string_seconds = _phase1_page(
        root, page, config.audit, env["parse_cache"], env["resolver"],
        disk_cache, config.policies,
    )
    page_audit = _audit_result(result, config.audit)
    partial = PageResult(
        page=str(page),
        parse_errors=list(result.parse_errors),
        audit=page_audit,
        string_seconds=string_seconds,
        deps=_relative_deps(result.dep_files, root),
        layout_sensitive=result.layout_sensitive,
    )

    if len(result.hotspots) < config.split_threshold:
        started = time.perf_counter()
        with PERF.timer("phase2.checks"):
            for spot in result.hotspots:
                report, scope_nts, scope_prods = _check_one(
                    result.grammar, spot, config.policies
                )
                partial.nonterminals += scope_nts
                partial.productions += scope_prods
                partial.reports.append(report)
        partial.check_seconds = time.perf_counter() - started
        if page_audit is not None:
            for report in partial.reports:
                report.confidence = page_audit.confidence
        if disk_cache is not None and key is not None:
            disk_cache.store("page", key, partial)
        _profile_ipc(config, partial)
        return ("page", index, partial, PERF.diff(before), stolen)

    blob_key = f"{config.batch_id}:{index}"
    blobs.publish(blob_key, (result.grammar, result.hotspots))
    return (
        "phase1",
        index,
        partial,
        blob_key,
        len(result.hotspots),
        key,
        PERF.diff(before),
        stolen,
    )


def _fetch_blob(blobs: BlobStore, blob_key: str) -> tuple:
    pair = _BLOB_CACHE.get(blob_key)
    if pair is not None:
        _BLOB_CACHE.move_to_end(blob_key)
        return pair
    pair = blobs.fetch(blob_key)
    if pair is None:
        raise RuntimeError(f"split-page blob {blob_key!r} missing from memo service")
    _BLOB_CACHE[blob_key] = pair
    while len(_BLOB_CACHE) > _BLOB_CACHE_CAP:
        _BLOB_CACHE.popitem(last=False)
    return pair


def _run_cascade(task, stolen: bool, blobs: BlobStore | None, before):
    _, config, blob_key, page_index, spot_index = task
    _configure_obs(config)
    _warm_policies(config)
    grammar, hotspots = _fetch_blob(blobs, blob_key)
    started = time.perf_counter()
    with PERF.timer("phase2.checks"):
        report, scope_nts, scope_prods = _check_one(
            grammar, hotspots[spot_index], config.policies
        )
    seconds = time.perf_counter() - started
    return (
        "cascade",
        page_index,
        spot_index,
        report,
        scope_nts,
        scope_prods,
        seconds,
        PERF.diff(before),
        stolen,
    )


def _static_includes(
    tree, current_dir: Path, root: Path, file_set: frozenset[str]
) -> set[str]:
    """Resolver-visible targets of the tree's literal-argument includes.

    Only a pre-pass *hint*: candidates are matched by normalized path
    (relative to the including file's directory, then the project root)
    against the resolver's file census — exactly the string forms the
    analysis itself will hand to ``_parse``, so a discovered file's
    shared AST entry lands under the key the consumer will look up.
    Dynamic includes are left to the page analyses (which resolve them
    properly, few files at a time)."""
    found: set[str] = set()
    for node in php_ast.walk(tree):
        if not isinstance(node, php_ast.Include):
            continue
        path_expr = node.path
        if not (
            isinstance(path_expr, php_ast.Literal)
            and isinstance(path_expr.value, str)
            and path_expr.value
        ):
            continue
        for base in (current_dir, root):
            candidate = os.path.normpath(str(base / path_expr.value))
            if candidate in file_set:
                found.add(candidate)
                break
    return found


def _run_parse(task, stolen: bool, before):
    _, config, files, chunk_id = task
    _configure_obs(config)
    env = _project_env(config)
    root = Path(config.root)
    parsed = shared = errors = 0
    discovered: set[str] = set()

    def sweep() -> None:
        nonlocal parsed, shared, errors
        for name in files:
            path = Path(name)
            outcome, tree = _stringtaint.prepass_parse_file(
                path, env["disk_cache"]
            )
            if outcome == "parsed":
                parsed += 1
            elif outcome == "shared":
                shared += 1
            else:
                errors += 1
            if tree is not None:
                discovered.update(
                    _static_includes(tree, path.parent, root, env["files"])
                )

    payload = None
    if config.timeline:
        with TIMELINE.page(f"<prepass:{chunk_id}>") as capture:
            with TIMELINE.phase("prepass"):
                sweep()
        payload = capture.payload()
    else:
        sweep()
    return (
        "parse", chunk_id, parsed, shared, errors, tuple(sorted(discovered)),
        PERF.diff(before), stolen, payload,
    )


def _execute(task, stolen: bool, blobs: BlobStore | None):
    kind = task[0]
    before = PERF.snapshot()
    try:
        if kind == "page":
            return _run_page(task, stolen, blobs, before)
        if kind == "cascade":
            return _run_cascade(task, stolen, blobs, before)
        if kind == "parse":
            return _run_parse(task, stolen, before)
        raise ValueError(f"unknown farm task kind {kind!r}")
    except Exception:
        return ("error", kind, traceback.format_exc(), PERF.diff(before), stolen)


def farm_worker_main(index, task_queues, result_queue, stop_event, store):
    """One worker process: take → steal → sleep, until told to stop."""
    client = SharedMemoClient(store)
    blobs = BlobStore(client) if client.available else None
    if client.available:
        # analysis-layer hooks: consulted on local memo misses, fed on
        # local computes (no-ops in serial runs, where they stay None)
        _policy.SHARED_VERDICTS = VerdictMemo(client)
        _image.SHARED_IMAGES = ImageMemo(client)
        _stringtaint.SHARED_ASTS = AstMemo(client)
    own = task_queues[index]
    victims = [
        task_queues[(index + step) % len(task_queues)]
        for step in range(1, len(task_queues))
    ]
    while not stop_event.is_set():
        task = None
        stolen = False
        try:
            task = own.get_nowait()
        except queue.Empty:
            for victim in victims:
                try:
                    task = victim.get_nowait()
                    stolen = True
                    break
                except queue.Empty:
                    continue
        if task is None:
            time.sleep(0.002)
            continue
        # every envelope is tagged with its batch id so the driver can
        # discard leftovers from an aborted batch instead of mistaking
        # them for the current batch's results
        result_queue.put((task[1].batch_id, _execute(task, stolen, blobs)))
