"""Deterministic work-stealing scheduler (planning + simulation).

Two consumers:

* the farm driver (:mod:`repro.farm.driver`) uses :meth:`plan` to place
  the initial task batch into per-worker queues — longest processing
  time first onto the least-loaded queue, the classic 4/3-approximation
  for makespan — and leaves *runtime* stealing to the worker processes
  themselves (an idle worker takes the front of a victim's queue: the
  real queues are FIFO pipes, and under LPT placement the front is the
  victim's largest remaining task, which is what a steal should move);
* the unit tests drive :meth:`simulate`, an event-driven model of the
  same take/steal discipline under a fake clock, so stealing behaviour,
  makespan bounds, and determinism are testable without spawning a
  single process.

Everything here is deterministic: ties break on submission order and
worker index, never on wall time or hashing.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass(frozen=True)
class FarmTask:
    """One schedulable unit of work.

    ``seq`` is the submission ordinal (the determinism tie-break),
    ``cost`` the driver's runtime estimate (seconds — entry-file bytes
    scaled, for pages), ``payload`` whatever the executor needs.
    """

    seq: int
    kind: str  # "parse" | "page" | "cascade"
    cost: float
    payload: object = None


@dataclass
class SimReport:
    """What one :meth:`WorkStealingScheduler.simulate` run observed."""

    makespan: float = 0.0
    busy: list[float] = field(default_factory=list)
    steals: int = 0
    #: (worker, task.seq, start_time) in execution order
    schedule: list[tuple[int, int, float]] = field(default_factory=list)


class WorkStealingScheduler:
    """Per-worker deques with LPT placement and deterministic stealing."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        self.workers = workers
        self.queues: list[deque[FarmTask]] = [deque() for _ in range(workers)]
        self._load = [0.0] * workers
        self.steals = 0

    # -- planning ----------------------------------------------------------

    def plan(self, tasks: list[FarmTask]) -> list[list[FarmTask]]:
        """Assign ``tasks`` LPT-first and return the per-worker queues.

        Descending cost, submission order breaking ties, each task onto
        the currently least-loaded worker (lowest index on load ties) —
        so the same task list always yields the same placement.
        """
        for task in sorted(tasks, key=lambda t: (-t.cost, t.seq)):
            target = min(range(self.workers), key=lambda i: (self._load[i], i))
            self.queues[target].append(task)
            self._load[target] += task.cost
        return [list(queue) for queue in self.queues]

    def push(self, task: FarmTask, worker: int) -> None:
        self.queues[worker].append(task)
        self._load[worker] += task.cost

    def remaining(self, worker: int) -> float:
        return sum(task.cost for task in self.queues[worker])

    # -- the take/steal discipline ----------------------------------------

    def take(self, worker: int) -> tuple[FarmTask, bool] | None:
        """The next task for ``worker``: its own queue front, else a
        steal from the front of the most-loaded victim (lowest index on
        ties).  Queues are FIFO both ways because the real per-worker
        queues are ``multiprocessing.Queue`` pipes, which only expose
        their front — and LPT placement already put each queue's largest
        remaining task there.  Returns ``(task, stolen)`` or ``None``
        when every queue is empty."""
        own = self.queues[worker]
        if own:
            return own.popleft(), False
        victims = [i for i in range(self.workers) if i != worker and self.queues[i]]
        if not victims:
            return None
        victim = min(victims, key=lambda i: (-self.remaining(i), i))
        self.steals += 1
        return self.queues[victim].popleft(), True

    # -- fake-clock simulation --------------------------------------------

    def simulate(self) -> SimReport:
        """Event-driven run of the current queues under a fake clock.

        Each worker repeatedly takes (or steals) a task and advances its
        own clock by the task's cost; the next event always goes to the
        worker with the smallest clock (lowest index on ties).  No wall
        time, no randomness: a seeded task list replays identically.
        """
        report = SimReport(busy=[0.0] * self.workers)
        clocks = [0.0] * self.workers
        idle: set[int] = set()
        while len(idle) < self.workers:
            worker = min(
                (i for i in range(self.workers) if i not in idle),
                key=lambda i: (clocks[i], i),
            )
            taken = self.take(worker)
            if taken is None:
                idle.add(worker)
                continue
            task, stolen = taken
            if stolen:
                report.steals += 1
            report.schedule.append((worker, task.seq, clocks[worker]))
            clocks[worker] += task.cost
            report.busy[worker] += task.cost
        report.makespan = max(clocks) if clocks else 0.0
        return report
