"""The farm driver: persistent workers, task fan-out, page-order merge.

:class:`AnalysisFarm` owns the pool — one task queue per worker, one
shared result queue, a stop event, and (unless ``REPRO_FARM_MEMO=0``)
the :class:`~repro.farm.memo.MemoService` every worker publishes to.
Workers are plain daemon processes running
:func:`repro.farm.workers.farm_worker_main`; they survive across
batches, so a long-lived caller (the analysis daemon) pays fork and
warm-up once and shares one pool across every resident project.

:meth:`map_pages` runs one batch: an optional include/parse pre-pass
over the entry pages' dependency closure — seeded with the pages
themselves and extended breadth-first as parse tasks report their
static include targets (``REPRO_FARM_PREPASS=0`` disables) — then the
entry pages, placed LPT-first by :class:`WorkStealingScheduler` with
runtime stealing between the workers themselves.  Pages that report
many hotspots come back as phase-1 partials plus a published
``(grammar, hotspots)`` blob; the driver fans the hotspots back out as
stealable ``cascade`` tasks and reassembles the page in hotspot order
(``REPRO_FARM_SPLIT=<n>`` tunes the threshold, ``0`` disables).

Determinism: results are merged **in page order**, cascade reports are
reattached **in hotspot order**, and every per-task perf delta is merged
into the driver's recorder — so output documents and the telemetry
invariants (hits+misses totals, pages.analyzed) are byte-identical to a
serial run regardless of which worker ran what, when.

Failure isolation: every task and result envelope is tagged with its
batch id.  When a batch aborts, its undispatched tasks are drained and
its published blobs dropped; envelopes that workers were still
producing are discarded by the next batch's collect loop (counted as
``farm.envelopes.stale_dropped``), so a failed request never leaks
results into a later batch — or a later tenant.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
import threading
from pathlib import Path

from repro.obs.metrics import PERF
from repro.obs.timeline import TIMELINE
from repro.obs.trace import TRACE

from .memo import MemoService, SharedMemoClient
from .scheduler import FarmTask, WorkStealingScheduler
from .workers import BatchConfig, _profile_ipc, farm_worker_main


def _env_flag(name: str, default: str = "1") -> bool:
    return os.environ.get(name, default) != "0"


def _split_threshold() -> int:
    raw = os.environ.get("REPRO_FARM_SPLIT", "")
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return 3


def _file_cost(path: Path) -> float:
    try:
        return float(path.stat().st_size) + 1.0
    except OSError:
        return 1.0


class AnalysisFarm:
    """A persistent work-stealing worker pool plus its memo service.

    Batches are serialized by an internal lock — concurrent daemon
    clients queue up rather than interleave task streams — but the pool
    itself is shared: the same workers (with their warm policy automata
    and per-project caches) serve every batch and every project.
    """

    def __init__(self, jobs: int) -> None:
        self.jobs = max(1, jobs)
        self._ctx = multiprocessing.get_context()
        self.memo_service = MemoService() if _env_flag("REPRO_FARM_MEMO") else None
        store = self.memo_service.store if self.memo_service else None
        self._client = SharedMemoClient(store)
        self._batch_lock = threading.Lock()
        self._batch_counter = 0
        self._stop = self._ctx.Event()
        self._task_queues = [self._ctx.Queue() for _ in range(self.jobs)]
        self._result_queue = self._ctx.Queue()
        self._workers = []
        for index in range(self.jobs):
            process = self._ctx.Process(
                target=farm_worker_main,
                args=(
                    index,
                    self._task_queues,
                    self._result_queue,
                    self._stop,
                    store,
                ),
                daemon=True,
                name=f"farm-worker-{index}",
            )
            process.start()
            self._workers.append(process)

    # -- batch execution ---------------------------------------------------

    def map_pages(
        self,
        project_root: str | Path,
        pages: list,
        audit: bool = False,
        cache_dir: str | None = None,
        cache_max_mb: float | None = None,
        project_state: str | None = None,
        policies=None,
        profile: bool = False,
        epoch: int = 0,
        disk_cache=None,
    ) -> list:
        """Analyze ``pages`` on the farm; results in input order."""
        with self._batch_lock:
            return self._run_batch(
                Path(project_root), pages, audit, cache_dir, cache_max_mb,
                project_state, policies, profile, epoch, disk_cache,
            )

    def _run_batch(
        self, root, pages, audit, cache_dir, cache_max_mb, project_state,
        policies, profile, epoch, disk_cache,
    ) -> list:
        self._batch_counter += 1
        config = BatchConfig(
            root=str(root),
            audit=audit,
            cache_dir=cache_dir,
            cache_max_mb=cache_max_mb,
            project_state=project_state,
            policies=policies,
            profile=profile,
            trace=TRACE.enabled,
            timeline=TIMELINE.enabled,
            epoch=epoch,
            split_threshold=self._split_threshold_for(),
            batch_id=f"{os.getpid()}:{self._batch_counter}",
        )
        scheduler = WorkStealingScheduler(self.jobs)
        seq = 0

        # The pre-pass BFS starts at the entry pages; parse tasks report
        # static include targets and the collect loop fans the newly
        # discovered files out as further chunks, so the pre-pass covers
        # the pages' dependency closure without touching the rest of the
        # project tree.
        prepass = {
            "enabled": (
                self.memo_service is not None
                and _env_flag("REPRO_FARM_PREPASS")
                and len(pages) > 1
            ),
            "seen": set(),
            "next_chunk": 0,
        }
        parse_tasks: list[FarmTask] = []
        if prepass["enabled"]:
            seeds = [Path(str(p)) for p in pages]
            prepass["seen"].update(os.path.normpath(str(p)) for p in seeds)
            for chunk in self._chunk_files(seeds):
                cost = sum(_file_cost(path) for path in chunk)
                payload = (
                    "parse", config, tuple(str(p) for p in chunk),
                    prepass["next_chunk"],
                )
                prepass["next_chunk"] += 1
                parse_tasks.append(FarmTask(seq, "parse", cost, payload))
                seq += 1
            PERF.incr("farm.prepass.chunks", len(parse_tasks))
        # the pre-pass is planned first so it sits at every queue front:
        # workers warm the shared AST memo before page analyses want it
        scheduler.plan(parse_tasks)

        page_tasks = []
        for index, page in enumerate(pages):
            payload = ("page", config, str(page), index)
            page_tasks.append(
                FarmTask(seq, "page", _file_cost(Path(page)), payload)
            )
            seq += 1
        scheduler.plan(page_tasks)

        for worker_index, planned in enumerate(scheduler.queues):
            for task in planned:
                self._task_queues[worker_index].put(task.payload)

        return self._collect(
            config, len(pages), len(parse_tasks), disk_cache, prepass
        )

    def _split_threshold_for(self) -> int:
        if self.memo_service is None:
            return 0
        return _split_threshold()

    def _chunk_files(self, files: list[Path]) -> list[list[Path]]:
        chunks = max(1, min(self.jobs * 2, len(files)))
        sliced: list[list[Path]] = [[] for _ in range(chunks)]
        # deterministic greedy balance by size: biggest file first onto
        # the lightest chunk
        weights = [0.0] * chunks
        ordered = sorted(
            files, key=lambda p: (-_file_cost(p), str(p))
        )
        for path in ordered:
            target = min(range(chunks), key=lambda i: (weights[i], i))
            sliced[target].append(path)
            weights[target] += _file_cost(path)
        return [chunk for chunk in sliced if chunk]

    def _collect(self, config, n_pages, n_parse, disk_cache, prepass) -> list:
        splits: dict[int, dict] = {}
        try:
            return self._collect_inner(
                config, n_pages, n_parse, disk_cache, prepass, splits
            )
        except Exception:
            # A failed batch must not poison the persistent farm: pull
            # its undispatched tasks back out of the worker queues and
            # drop its published blobs.  Tasks a worker already took
            # will still emit envelopes later, but they carry this
            # batch's id, so the next batch's _collect discards them.
            self._abort_batch(splits)
            raise

    def _abort_batch(self, splits: dict[int, dict]) -> None:
        for task_queue in self._task_queues:
            while True:
                try:
                    task_queue.get_nowait()
                except queue_mod.Empty:
                    break
        for state in splits.values():
            self._client.delete("blob", state["blob_key"])

    def _collect_inner(
        self, config, n_pages, n_parse, disk_cache, prepass, splits
    ) -> list:
        results: list = [None] * n_pages
        outstanding = n_pages + n_parse
        next_queue = 0
        while outstanding > 0:
            try:
                batch_tag, envelope = self._result_queue.get(timeout=1.0)
            except queue_mod.Empty:
                for process in self._workers:
                    if not process.is_alive():
                        raise RuntimeError(
                            f"farm worker {process.name} died "
                            f"(exitcode {process.exitcode})"
                        )
                continue
            if batch_tag != config.batch_id:
                # leftover from an aborted earlier batch (possibly a
                # different project's) — never merge it into this one
                PERF.incr("farm.envelopes.stale_dropped")
                continue
            outstanding -= 1
            kind = envelope[0]
            if kind == "parse":
                perf, stolen = envelope[-3], envelope[-2]
            else:
                perf, stolen = envelope[-2], envelope[-1]
            if perf:
                PERF.merge(perf)
            if stolen:
                PERF.incr("farm.tasks.stolen")

            if kind == "page":
                _, index, result, _, _ = envelope
                results[index] = result
            elif kind == "phase1":
                _, index, partial, blob_key, n_spots, cache_key, _, _ = envelope
                PERF.incr("farm.pages.split")
                splits[index] = {
                    "partial": partial,
                    "blob_key": blob_key,
                    "n": n_spots,
                    "cache_key": cache_key,
                    "reports": {},
                }
                for spot_index in range(n_spots):
                    task = ("cascade", config, blob_key, index, spot_index)
                    self._task_queues[next_queue % self.jobs].put(task)
                    next_queue += 1
                outstanding += n_spots
            elif kind == "cascade":
                (_, page_index, spot_index, report, scope_nts, scope_prods,
                 seconds, _, _) = envelope
                PERF.incr("farm.tasks.cascades")
                state = splits[page_index]
                state["reports"][spot_index] = (
                    report, scope_nts, scope_prods, seconds
                )
                if len(state["reports"]) == state["n"]:
                    results[page_index] = self._assemble_split(
                        state, config, disk_cache
                    )
                    del splits[page_index]
            elif kind == "parse":
                (_, chunk_id, parsed, shared, errors, discovered,
                 _, _, payload) = envelope
                PERF.incr("farm.prepass.files_parsed", parsed)
                PERF.incr("farm.prepass.files_shared", shared)
                PERF.incr("farm.prepass.files_error", errors)
                TIMELINE.adopt_capture(payload)
                new = [
                    name for name in discovered
                    if name not in prepass["seen"]
                ]
                if new:
                    prepass["seen"].update(new)
                    PERF.incr("farm.prepass.files_discovered", len(new))
                    for chunk in self._chunk_files([Path(n) for n in new]):
                        task = (
                            "parse", config,
                            tuple(str(p) for p in chunk),
                            prepass["next_chunk"],
                        )
                        prepass["next_chunk"] += 1
                        PERF.incr("farm.prepass.chunks")
                        self._task_queues[next_queue % self.jobs].put(task)
                        next_queue += 1
                        outstanding += 1
            elif kind == "error":
                _, task_kind, tb, _, _ = envelope
                raise RuntimeError(
                    f"farm worker failed on a {task_kind!r} task:\n{tb}"
                )
            else:
                raise RuntimeError(f"unknown farm envelope kind {kind!r}")

        missing = [i for i, result in enumerate(results) if result is None]
        if missing:
            raise RuntimeError(f"farm batch lost results for pages {missing}")
        return results

    def _assemble_split(self, state: dict, config, disk_cache):
        """Reattach a split page's cascade reports **in hotspot order**
        — the same order the serial phase-2 loop runs — then stamp
        confidence and store the finished result, exactly like the
        inline path."""
        partial = state["partial"]
        for spot_index in range(state["n"]):
            report, scope_nts, scope_prods, seconds = state["reports"][
                spot_index
            ]
            partial.reports.append(report)
            partial.nonterminals += scope_nts
            partial.productions += scope_prods
            partial.check_seconds += seconds
        if partial.audit is not None:
            for report in partial.reports:
                report.confidence = partial.audit.confidence
        if disk_cache is not None and state["cache_key"] is not None:
            disk_cache.store("page", state["cache_key"], partial)
        # --profile accounting for split pages happens here, on the
        # assembled result, so ipc.page_results/ipc.page_bytes_* count
        # every page exactly once whether or not it was split
        _profile_ipc(config, partial)
        self._client.delete("blob", state["blob_key"])
        return partial

    # -- lifecycle ---------------------------------------------------------

    def memo_stats(self) -> dict:
        if self.memo_service is None:
            return {"sizes": {}, "counters": {}}
        return self.memo_service.stats()

    def shutdown(self) -> None:
        self._stop.set()
        for process in self._workers:
            process.join(timeout=2.0)
        for process in self._workers:
            if process.is_alive():
                process.terminate()
        for q in self._task_queues + [self._result_queue]:
            q.cancel_join_thread()
            q.close()
        if self.memo_service is not None:
            self.memo_service.shutdown()
            self.memo_service = None

    def __enter__(self) -> "AnalysisFarm":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
