"""The farm's shared memo service: one store, every worker.

A serial run's verdict / FST-image / AST memos live in process-global
caches; the old ``ProcessPoolExecutor`` driver gave each worker its own
empty copy, so a four-worker run recomputed every shared cascade four
times.  The farm instead hosts a single :class:`MemoStore` in a
``multiprocessing.managers.BaseManager`` process; workers reach it
through a picklable proxy wrapped in :class:`SharedMemoClient`.

Every key is **content-addressed** (grammar fingerprints, FST content
keys, source-bytes AST keys), so an entry published by any worker — or
by a worker serving a *different* project in the multi-tenant daemon —
is exactly what a cold computation in the consumer would have produced.
That is the whole soundness argument (DESIGN.md §5k): sharing can change
*when* a value is computed, never *what* it is.

Values cross the proxy as pickled bytes; section adapters
(:class:`VerdictMemo`, :class:`ImageMemo`, :class:`AstMemo`,
:class:`BlobStore`) do the (un)pickling and feed hit/miss/publish
counters into the :mod:`repro.obs` registry.  Any proxy failure
(manager died, connection reset) permanently degrades the client to
"no sharing" — the analysis itself never depends on the service.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict
from multiprocessing.managers import BaseManager

from repro.obs.metrics import PERF

#: Per-section entry caps: enough for whole corpus runs, bounded for
#: daemon lifetimes.
_SECTION_CAPS = {"verdict": 8192, "image": 2048, "ast": 8192}
_DEFAULT_CAP = 4096

#: Sections that are never LRU-evicted.  Split-page blobs must survive
#: until the driver has run every one of the page's cascade tasks — an
#: eviction in between would fail the whole batch — so their lifetime
#: is driver-managed: published in ``_run_page``, deleted in
#: ``_assemble_split`` (or on batch abort), never aged out.
_NO_EVICT_SECTIONS = frozenset({"blob"})


class MemoStore:
    """Thread-safe sectioned LRU of pickled-bytes memo entries.

    Lives inside the manager process; every method call is one proxy
    round-trip, so the API is deliberately coarse (``get``/``put``/
    ``delete``/``stats``) and values are opaque ``bytes``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sections: dict[str, OrderedDict[object, bytes]] = {}
        self._counters: dict[str, int] = {}

    def _bump(self, name: str, amount: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + amount

    def get(self, section: str, key) -> bytes | None:
        with self._lock:
            entries = self._sections.get(section)
            if entries is None or key not in entries:
                self._bump(f"{section}.misses")
                return None
            entries.move_to_end(key)
            self._bump(f"{section}.hits")
            return entries[key]

    def put(self, section: str, key, blob: bytes) -> None:
        cap = _SECTION_CAPS.get(section, _DEFAULT_CAP)
        with self._lock:
            entries = self._sections.setdefault(section, OrderedDict())
            if key not in entries:
                self._bump(f"{section}.published")
                self._bump(f"{section}.published_bytes", len(blob))
            entries[key] = blob
            entries.move_to_end(key)
            if section in _NO_EVICT_SECTIONS:
                return
            while len(entries) > cap:
                entries.popitem(last=False)
                self._bump(f"{section}.evictions")

    def has(self, section: str, key) -> bool:
        """Existence probe without shipping the value (or touching the
        hit/miss counters — used by the pre-pass to skip re-parses)."""
        with self._lock:
            entries = self._sections.get(section)
            return entries is not None and key in entries

    def delete(self, section: str, key) -> None:
        with self._lock:
            entries = self._sections.get(section)
            if entries is not None:
                entries.pop(key, None)

    def stats(self) -> dict:
        with self._lock:
            sizes = {
                name: len(entries) for name, entries in self._sections.items()
            }
            return {"sizes": sizes, "counters": dict(self._counters)}


class _MemoManager(BaseManager):
    pass


_MemoManager.register(
    "MemoStore", MemoStore, exposed=["get", "put", "has", "delete", "stats"]
)


class MemoService:
    """Owns the manager process hosting one :class:`MemoStore`.

    ``service.store`` is the proxy — picklable, so the farm driver hands
    it to every worker process at spawn time.
    """

    def __init__(self) -> None:
        self._manager = _MemoManager()
        self._manager.start()
        self.store = self._manager.MemoStore()

    def stats(self) -> dict:
        try:
            return self.store.stats()
        except Exception:
            return {"sizes": {}, "counters": {}}

    def shutdown(self) -> None:
        try:
            self._manager.shutdown()
        except Exception:
            pass


class SharedMemoClient:
    """One worker's error-tolerant handle on the shared store.

    The first proxy failure flips the client to broken: every later call
    is a cheap local no-op, the worker keeps analyzing with its own
    process-local caches, and the driver sees the degradation only in
    the ``farm.memo.errors`` counter.
    """

    def __init__(self, store) -> None:
        self._store = store
        self._broken = store is None

    @property
    def available(self) -> bool:
        return not self._broken

    def fetch_bytes(self, section: str, key) -> bytes | None:
        if self._broken:
            return None
        try:
            return self._store.get(section, key)
        except Exception:
            self._broken = True
            PERF.incr("farm.memo.errors")
            return None

    def has(self, section: str, key) -> bool:
        if self._broken:
            return False
        try:
            return self._store.has(section, key)
        except Exception:
            self._broken = True
            PERF.incr("farm.memo.errors")
            return False

    def publish_bytes(self, section: str, key, blob: bytes) -> None:
        if self._broken:
            return
        try:
            self._store.put(section, key, blob)
        except Exception:
            self._broken = True
            PERF.incr("farm.memo.errors")

    def delete(self, section: str, key) -> None:
        if self._broken:
            return
        try:
            self._store.delete(section, key)
        except Exception:
            self._broken = True
            PERF.incr("farm.memo.errors")


class _SectionMemo:
    """Pickle + counter adapter over one store section.

    Subclass interface expected by the analysis-layer hooks
    (``policy.SHARED_VERDICTS`` etc.): ``fetch(key) -> object | None``
    and ``publish(key, value)``.
    """

    section = ""

    def __init__(self, client: SharedMemoClient) -> None:
        self.client = client

    def fetch(self, key):
        blob = self.client.fetch_bytes(self.section, key)
        if blob is None:
            PERF.incr(f"farm.{self.section}.shared_misses")
            return None
        try:
            value = pickle.loads(blob)
        except Exception:
            PERF.incr("farm.memo.errors")
            return None
        PERF.incr(f"farm.{self.section}.shared_hits")
        return value

    def publish(self, key, value) -> None:
        try:
            blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            PERF.incr("farm.memo.errors")
            return
        PERF.incr(f"farm.{self.section}.published")
        PERF.incr(f"farm.{self.section}.published_bytes", len(blob))
        self.client.publish_bytes(self.section, key, blob)


class VerdictMemo(_SectionMemo):
    """Phase-2 verdict payloads, keyed by namespaced grammar fingerprint
    (the same key :data:`repro.analysis.policy.VERDICT_CACHE` uses)."""

    section = "verdict"


class ImageMemo(_SectionMemo):
    """FST-image entries ``(grammar, start, recipes)``, keyed by
    ``(fst.content_key(), input shape fingerprint)``."""

    section = "image"


class AstMemo(_SectionMemo):
    """Parsed ``(tree, error)`` pairs keyed by the on-disk AST cache key
    (a hash of source bytes + path — see :meth:`DiskCache.ast_key`)."""

    section = "ast"

    def has(self, key) -> bool:
        return self.client.has(self.section, key)


class BlobStore(_SectionMemo):
    """Split-page transport: a pickled ``(grammar, hotspots)`` pair
    published by the phase-1 worker and fetched by cascade workers.
    Unlike the memo sections the blob section is exempt from LRU
    eviction — a live blob must outlast all of its page's cascade
    tasks — and the driver deletes blobs explicitly once a page is
    fully assembled (or the batch aborts)."""

    section = "blob"

    def delete(self, key) -> None:
        self.client.delete(self.section, key)
