"""The work-stealing analysis farm (parallel execution layer).

``run_pages(jobs>1)`` fans work out to a pool of persistent worker
processes at three granularities — include/parse pre-pass chunks, entry
pages, and individual phase-2 cascades — over per-worker task queues
with real work stealing (an idle worker drains its victims' queues).
Cross-worker state is shared through a content-addressed memo service
(:mod:`repro.farm.memo`): grammar-fingerprint verdicts, FST-image
recipes, and parsed ASTs published by one worker are consumed by every
other, so the farm pays each cascade / image construction / parse once
per *content*, like a serial run does, instead of once per process.

The driver (:class:`repro.farm.driver.AnalysisFarm`) merges results in
page order, so ``--jobs N`` output is byte-identical to serial; see
DESIGN.md §5k for the soundness argument.
"""

from .driver import AnalysisFarm
from .memo import MemoService, MemoStore, SharedMemoClient
from .scheduler import FarmTask, WorkStealingScheduler

__all__ = [
    "AnalysisFarm",
    "FarmTask",
    "MemoService",
    "MemoStore",
    "SharedMemoClient",
    "WorkStealingScheduler",
]
