"""Compatibility shim: span-tree tracing now lives in :mod:`repro.obs`.

``from repro.trace import TRACE`` keeps working everywhere; the actual
implementation is :mod:`repro.obs.trace` (see its docstring for the
span-id determinism and page-order reassembly contracts).
"""

from __future__ import annotations

from repro.obs.trace import (  # noqa: F401  (re-exported API)
    TRACE,
    TRACE_FORMAT,
    Span,
    TraceRecorder,
    render_run,
    span_id,
    tree_shape,
    write_run,
)
