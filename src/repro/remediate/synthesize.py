"""Candidate-patch synthesis from finding provenance.

Both candidate kinds are pure in-place byte splices (no line is ever
inserted), computed from the spans the lexer/parser now record on every
faithfully-sourced AST node:

* **Prepared rewrite** — the sink call's query argument is flattened
  into literal/hole parts; when every hole sits in a parameterizable
  position (immediately between matching string-literal quotes, or in
  an unquoted value position), the whole argument is replaced by
  ``sqlciv_prepare('<template>', array(<holes…>))`` where the template
  carries ``?`` placeholders.  ``sqlciv_prepare`` is modeled in
  :mod:`repro.php.builtins` as returning its (untainted) template, so
  re-analysis of the patched page proves the rewrite safe, and the
  concrete oracle executes it as the taint-free template.
* **Sanitizer insertion** — the finding's provenance source events
  carry the byte span of the source *expression* (``$_GET['id']``);
  the policy-designated sanitizer is wrapped around that expression at
  its latest usable chain point.  Spans inside double-quoted
  interpolations are rejected (a call is not valid inside a string
  literal), as are sources without a faithful span.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis import sources as sink_tables
from repro.php import ast

#: machine-readable reasons a candidate kind is inapplicable
REASON_SINK_NOT_FOUND = "sink-call-not-found"
REASON_NO_SPAN = "sink-argument-span-unavailable"
REASON_NO_HOLES = "query-argument-is-literal"
REASON_ALL_HOLES = "query-has-no-literal-context"
REASON_MID_LITERAL = "hole-inside-string-literal"
REASON_UNRENDERABLE = "hole-expression-unrenderable"
REASON_SOURCE_NO_SPAN = "source-span-unavailable"
REASON_SOURCE_IN_INTERP = "source-inside-interpolation"
REASON_NO_SANITIZER = "no-designated-sanitizer"
REASON_NO_SOURCES = "no-provenance-sources"

#: the deployable prepared-statement shim the rewrite targets; a PHP
#: implementation binds the holes through a real parameterized API
PREPARE_SHIM = "sqlciv_prepare"

#: policy/check → sanitizer.  For the SQL cascade the choice follows the
#: check that fired: escaping only confines data *inside* a string
#: literal, so unquoted positions (numeric, derivability, attack-string,
#: tokenization) get the stronger ``intval`` coercion instead.
_SQL_QUOTED_CHECKS = frozenset({"odd-quotes", "literal-break"})


@dataclass
class Patch:
    """One candidate fix: byte splices against a single source file."""

    file: str                      # absolute path of the patched file
    kind: str                      # "prepared" | "sanitize"
    #: non-overlapping ``(start, end, replacement)`` byte splices
    replacements: list[tuple[int, int, str]] = field(default_factory=list)
    description: str = ""

    def key(self) -> tuple:
        return (self.file, tuple(self.replacements))

    def apply(self, text: str) -> str:
        out = text
        for start, end, replacement in sorted(
            self.replacements, reverse=True
        ):
            out = out[:start] + replacement + out[end:]
        return out

    def unified_diff(self, original: str, rel_file: str) -> str:
        patched = self.apply(original)
        lines = difflib.unified_diff(
            original.splitlines(keepends=True),
            patched.splitlines(keepends=True),
            fromfile=f"a/{rel_file}",
            tofile=f"b/{rel_file}",
        )
        return "".join(lines)


def php_single_quote(text: str) -> str:
    """``text`` as a PHP single-quoted string literal."""
    return "'" + text.replace("\\", "\\\\").replace("'", "\\'") + "'"


# ---------------------------------------------------------------------------
# expression rendering (holes must become valid stand-alone PHP)
# ---------------------------------------------------------------------------


def render_expr(expr: ast.Expr) -> str | None:
    """Canonical PHP source for the expression subset holes draw on, or
    None when the expression has no faithful stand-alone rendering.

    Span text alone is not enough: a simple-interpolation hole like
    ``"$row[name]"`` spans ``$row[name]``, which *outside* a string
    parses as an array index by the constant ``name``.  Rendering from
    the AST always produces the quoted form.
    """
    if isinstance(expr, ast.Literal):
        value = expr.value
        if isinstance(value, bool):
            return "true" if value else "false"
        if value is None:
            return "null"
        if isinstance(value, (int, float)):
            return str(value)
        if isinstance(value, str):
            return php_single_quote(value)
        return None
    if isinstance(expr, ast.Var):
        return f"${expr.name}"
    if isinstance(expr, ast.ArrayDim):
        base = render_expr(expr.base)
        if base is None or expr.index is None:
            return None
        index = render_expr(expr.index)
        if index is None:
            return None
        return f"{base}[{index}]"
    if isinstance(expr, ast.Prop):
        base = render_expr(expr.base)
        return None if base is None else f"{base}->{expr.name}"
    if isinstance(expr, (ast.Call, ast.MethodCall, ast.StaticCall)):
        args = []
        for arg in expr.args:
            rendered = render_expr(arg)
            if rendered is None:
                return None
            args.append(rendered)
        arglist = ", ".join(args)
        if isinstance(expr, ast.Call):
            return f"{expr.name}({arglist})"
        if isinstance(expr, ast.StaticCall):
            return f"{expr.class_name}::{expr.name}({arglist})"
        base = render_expr(expr.obj)
        return None if base is None else f"{base}->{expr.name}({arglist})"
    if isinstance(expr, ast.BinOp):
        left = render_expr(expr.left)
        right = render_expr(expr.right)
        if left is None or right is None:
            return None
        return f"({left} {expr.op} {right})"
    if isinstance(expr, ast.UnaryOp):
        operand = render_expr(expr.operand)
        return None if operand is None else f"{expr.op}{operand}"
    if isinstance(expr, ast.Cast):
        operand = render_expr(expr.operand)
        return None if operand is None else f"({expr.kind}){operand}"
    if isinstance(expr, ast.ConstFetch):
        return expr.name
    if isinstance(expr, ast.Suppress):
        operand = render_expr(expr.operand)
        return None if operand is None else f"@{operand}"
    return None


# ---------------------------------------------------------------------------
# sink-call location
# ---------------------------------------------------------------------------


def _sink_argument_index(sink: str, policies) -> int | None:
    """Which argument of ``sink`` carries the checked string."""
    if sink.startswith("->"):
        return 0
    index = sink_tables.query_argument_index(sink)
    if index is not None:
        return index
    if policies is not None:
        for name, entries in policies.function_sink_table().items():
            if name == sink:
                return entries[0][1]
    if sink in sink_tables.SHELL_FUNCTIONS:
        return sink_tables.SHELL_FUNCTIONS[sink]
    return None


def find_sink_argument(
    tree: ast.File, line: int, sink: str, policies=None
) -> ast.Expr | None:
    """The query-argument expression of the ``sink`` call at ``line``."""
    index = _sink_argument_index(sink, policies)
    if index is None:
        return None
    for node in ast.walk(tree):
        if node.line != line:
            continue
        if sink.startswith("->"):
            if (
                isinstance(node, ast.MethodCall)
                and f"->{node.name}" == sink
                and len(node.args) > index
            ):
                return node.args[index]
        elif (
            isinstance(node, ast.Call)
            and node.name == sink
            and len(node.args) > index
        ):
            return node.args[index]
    return None


def interp_spans(tree: ast.File) -> list[tuple[int, int]]:
    """Byte spans of every double-quoted interpolation in ``tree`` —
    positions where inserting a function call is not valid PHP."""
    spans = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Interp) and node.span is not None:
            spans.append(node.span)
    return spans


# ---------------------------------------------------------------------------
# prepared-statement rewrite
# ---------------------------------------------------------------------------


def flatten_query(expr: ast.Expr) -> list[tuple[str, object]]:
    """``expr`` as an ordered list of ``("lit", text)`` / ``("hole",
    subexpr)`` parts, flattening concatenation and interpolation."""
    parts: list[tuple[str, object]] = []

    def go(node: ast.Expr) -> None:
        if isinstance(node, ast.Literal) and isinstance(
            node.value, (str, int, float)
        ):
            text = node.value if isinstance(node.value, str) else str(node.value)
            if parts and parts[-1][0] == "lit":
                parts[-1] = ("lit", parts[-1][1] + text)
            else:
                parts.append(("lit", text))
        elif isinstance(node, ast.BinOp) and node.op == ".":
            go(node.left)
            go(node.right)
        elif isinstance(node, ast.Interp):
            for part in node.parts:
                go(part)
        elif isinstance(node, ast.Suppress):
            go(node.operand)
        else:
            parts.append(("hole", node))

    go(expr)
    return parts


def _scan_literal(text: str, in_string: str | None) -> str | None:
    """Thread SQL string-literal state through a literal template chunk.
    ``in_string`` is the open quote character or None; backslash escapes
    and doubled quotes keep the literal open."""
    i = 0
    while i < len(text):
        char = text[i]
        if in_string is None:
            if char in ("'", '"'):
                in_string = char
        else:
            if char == "\\":
                i += 2
                continue
            if char == in_string:
                in_string = None
        i += 1
    return in_string


def build_template(
    parts: list[tuple[str, object]],
) -> tuple[str, list[ast.Expr], str | None]:
    """``(template, hole_exprs, failure_reason)`` for a prepared rewrite.

    A hole immediately between matching quotes swallows them (``'…'`` →
    ``?``); an unquoted hole becomes a bare ``?``.  A hole in the middle
    of a string literal (``'%$x%'``) cannot be parameterized — prepared
    statements bind whole values, not literal fragments.
    """
    template: list[str] = []
    holes: list[ast.Expr] = []
    in_string: str | None = None
    index = 0
    while index < len(parts):
        kind, payload = parts[index]
        if kind == "lit":
            in_string = _scan_literal(payload, in_string)
            template.append(payload)
            index += 1
            continue
        # a hole
        expr = payload
        if in_string is not None:
            # parameterizable only when the hole IS the whole literal:
            # the chunk before the hole ends with the bare opening quote
            # and the next literal chunk starts with the closing quote
            next_lit = (
                parts[index + 1][1]
                if index + 1 < len(parts) and parts[index + 1][0] == "lit"
                else None
            )
            if (
                template
                and template[-1].endswith(in_string)
                and next_lit is not None
                and next_lit.startswith(in_string)
            ):
                template[-1] = template[-1][:-1]          # swallow opener
                template.append("?")
                holes.append(expr)
                parts[index + 1] = ("lit", next_lit[1:])  # swallow closer
                in_string = None
                index += 1
                continue
            return "", [], REASON_MID_LITERAL
        template.append("?")
        holes.append(expr)
        index += 1
    return "".join(template), holes, None


def synthesize_prepared(
    source_text: str,
    tree: ast.File,
    finding,
    policies=None,
) -> tuple[Patch | None, str]:
    """The prepared-statement candidate for ``finding``, or a reason."""
    arg = find_sink_argument(tree, finding.line, finding.sink, policies)
    if arg is None:
        return None, REASON_SINK_NOT_FOUND
    if arg.span is None:
        return None, REASON_NO_SPAN
    parts = flatten_query(arg)
    holes_present = any(kind == "hole" for kind, _ in parts)
    if not holes_present:
        return None, REASON_NO_HOLES
    if not any(kind == "lit" and text.strip() for kind, text in parts):
        # replacing the whole query with one parameter is not a fix —
        # there is no trusted SQL context to prepare
        return None, REASON_ALL_HOLES
    template, holes, reason = build_template(parts)
    if reason is not None:
        return None, reason
    rendered = []
    for hole in holes:
        text = render_expr(hole)
        if text is None:
            return None, REASON_UNRENDERABLE
        rendered.append(text)
    replacement = (
        f"{PREPARE_SHIM}({php_single_quote(template)}, "
        f"array({', '.join(rendered)}))"
    )
    start, end = arg.span
    patch = Patch(
        file=finding.file,
        kind="prepared",
        replacements=[(start, end, replacement)],
        description=(
            f"rewrite the {finding.sink} query argument as a prepared "
            f"statement with {len(holes)} bound parameter(s)"
        ),
    )
    return patch, ""


# ---------------------------------------------------------------------------
# sanitizer insertion
# ---------------------------------------------------------------------------


def sanitizer_for(finding) -> tuple[str, str] | None:
    """``(open, close)`` wrapping text for the policy-designated
    sanitizer, or None when the policy has no insertable sanitizer."""
    policy = finding.policy or "sql"
    if policy == "sql":
        if finding.check in _SQL_QUOTED_CHECKS:
            return ("mysql_real_escape_string(", ")")
        return ("intval(", ")")
    if policy in ("xss", "xss-context"):
        return ("htmlspecialchars(", ", ENT_QUOTES)")
    if policy == "shell":
        return ("escapeshellarg(", ")")
    if policy == "path":
        return ("basename(", ")")
    return None   # eval: no sanitizer confines arbitrary code


def synthesize_sanitizer(
    finding,
    read_source,
    parse_source,
) -> tuple[Patch | None, str]:
    """Wrap every provenance source expression in the designated
    sanitizer.  ``read_source(file) -> str`` and ``parse_source(file) ->
    ast.File | None`` let the engine share its file/AST caches.
    """
    wrap = sanitizer_for(finding)
    if wrap is None:
        return None, REASON_NO_SANITIZER
    provenance = finding.provenance
    events = list(provenance.sources) if provenance is not None else []
    if not events:
        return None, REASON_NO_SOURCES
    opener, closer = wrap
    by_file: dict[str, list[tuple[int, int]]] = {}
    for event in events:
        span = event.get("span")
        file = event.get("file", "")
        if not file or not span or len(span) != 2 or span[0] < 0:
            return None, REASON_SOURCE_NO_SPAN
        tree = parse_source(file)
        if tree is None:
            return None, REASON_SOURCE_NO_SPAN
        for lo, hi in interp_spans(tree):
            if lo < span[0] and span[1] <= hi:
                return None, REASON_SOURCE_IN_INTERP
        spans = by_file.setdefault(file, [])
        if (span[0], span[1]) not in spans:
            spans.append((span[0], span[1]))
    patches: list[tuple[int, int, str]] = []
    target_file = None
    if len(by_file) != 1:
        # one patch object per file keeps splices simple; multi-file
        # chains fall back to the guard (rare: cross-include sources)
        return None, REASON_SOURCE_NO_SPAN
    (target_file, spans), = by_file.items()
    text = read_source(target_file)
    for start, end in sorted(spans):
        original = text[start:end]
        patches.append((start, end, f"{opener}{original}{closer}"))
    patch = Patch(
        file=target_file,
        kind="sanitize",
        replacements=patches,
        description=(
            f"wrap {len(patches)} untrusted source expression(s) in "
            f"{opener.rstrip('(')}"
        ),
    )
    return patch, ""
