"""Standalone reference checker for deployed guard profiles.

This module is the *runtime* half of the enforcement compiler: it
depends only on the Python standard library, so a guard profile exported
by :mod:`repro.remediate.guard` can be dropped next to this single file
at a deployment boundary (a database proxy, a WAF hook) and enforced
without the analysis toolchain.

A profile is a JSON document describing the hotspot's **safe-query
grammar**: the context-free language of every query the page can build
when each untrusted hole is confined to its check-specific safe
sublanguage.  :func:`check_query` answers membership with a classic
Earley recognizer — the grammar is small (a trimmed per-hotspot scope)
and queries are short, so cubic worst-case is irrelevant; nullable
nonterminals are handled with the Aycock–Horspool prediction fix, and
multi-character literal terminals are lowered to character runs at load
time.

Usage::

    python -m repro.remediate.guard_runtime profile.json "SELECT ..."
    # exit 0: the query is in the safe language; exit 1: reject

or programmatically: ``GuardChecker(profile).check(query)``.
"""

from __future__ import annotations

import json
import sys

#: profile format version this checker understands
GUARD_PROFILE_VERSION = 1


class GuardChecker:
    """Earley membership over one guard profile."""

    def __init__(self, profile: dict) -> None:
        if profile.get("version") != GUARD_PROFILE_VERSION:
            raise ValueError(
                f"unsupported guard profile version: {profile.get('version')!r}"
            )
        self.start: str = profile["start"]
        #: nonterminal -> list of rhs; rhs = list of terminal/nt symbols
        #: with every literal lowered to single characters:
        #: ("c", char) | ("set", ((lo, hi), ...)) | ("nt", name)
        self.rules: dict[str, list[tuple]] = {}
        for name, alternatives in profile["productions"].items():
            lowered = []
            for rhs in alternatives:
                symbols: list[tuple] = []
                for symbol in rhs:
                    tag, payload = symbol[0], symbol[1]
                    if tag == "lit":
                        for char in payload:
                            symbols.append(("c", char))
                    elif tag == "set":
                        symbols.append(
                            ("set", tuple((lo, hi) for lo, hi in payload))
                        )
                    elif tag == "nt":
                        symbols.append(("nt", payload))
                    else:
                        raise ValueError(f"unknown symbol tag {tag!r}")
                lowered.append(tuple(symbols))
            self.rules[name] = lowered
        self.nullable = self._nullable()

    def _nullable(self) -> frozenset[str]:
        nullable: set[str] = set()
        changed = True
        while changed:
            changed = False
            for name, alternatives in self.rules.items():
                if name in nullable:
                    continue
                for rhs in alternatives:
                    if all(
                        sym[0] == "nt" and sym[1] in nullable for sym in rhs
                    ):
                        nullable.add(name)
                        changed = True
                        break
        return frozenset(nullable)

    @staticmethod
    def _matches(symbol: tuple, char: str) -> bool:
        if symbol[0] == "c":
            return symbol[1] == char
        if symbol[0] == "set":
            code = ord(char)
            return any(lo <= code <= hi for lo, hi in symbol[1])
        return False

    def check(self, query: str) -> bool:
        """True iff ``query`` is in the profile's safe-query language."""
        # items: (lhs, rhs, dot, origin)
        n = len(query)
        chart: list[set[tuple]] = [set() for _ in range(n + 1)]
        for rhs in self.rules.get(self.start, ()):
            chart[0].add((self.start, rhs, 0, 0))
        for position in range(n + 1):
            worklist = list(chart[position])
            while worklist:
                item = worklist.pop()
                lhs, rhs, dot, origin = item
                if dot < len(rhs):
                    symbol = rhs[dot]
                    if symbol[0] == "nt":
                        target = symbol[1]
                        for alt in self.rules.get(target, ()):
                            predicted = (target, alt, 0, position)
                            if predicted not in chart[position]:
                                chart[position].add(predicted)
                                worklist.append(predicted)
                        if target in self.nullable:
                            advanced = (lhs, rhs, dot + 1, origin)
                            if advanced not in chart[position]:
                                chart[position].add(advanced)
                                worklist.append(advanced)
                    elif position < n and self._matches(
                        symbol, query[position]
                    ):
                        chart[position + 1].add((lhs, rhs, dot + 1, origin))
                else:
                    # complete: advance every item waiting on lhs at origin
                    for waiting in list(chart[origin]):
                        w_lhs, w_rhs, w_dot, w_origin = waiting
                        if (
                            w_dot < len(w_rhs)
                            and w_rhs[w_dot][0] == "nt"
                            and w_rhs[w_dot][1] == lhs
                        ):
                            advanced = (w_lhs, w_rhs, w_dot + 1, w_origin)
                            if advanced not in chart[position]:
                                chart[position].add(advanced)
                                worklist.append(advanced)
        return any(
            lhs == self.start and dot == len(rhs) and origin == 0
            for lhs, rhs, dot, origin in chart[n]
        )

    def shortest_string(self) -> str | None:
        """A shortest member of the safe-query language (None when the
        language is empty) — the profile's self-test "accept" example."""
        # bottom-up shortest-derivation fixpoint per nonterminal
        best: dict[str, str] = {}
        changed = True
        while changed:
            changed = False
            for name, alternatives in self.rules.items():
                for rhs in alternatives:
                    pieces: list[str] = []
                    ok = True
                    for symbol in rhs:
                        if symbol[0] == "c":
                            pieces.append(symbol[1])
                        elif symbol[0] == "set":
                            lo = symbol[1][0][0]
                            pieces.append(chr(lo))
                        else:
                            known = best.get(symbol[1])
                            if known is None:
                                ok = False
                                break
                            pieces.append(known)
                    if not ok:
                        continue
                    candidate = "".join(pieces)
                    current = best.get(name)
                    if current is None or len(candidate) < len(current):
                        best[name] = candidate
                        changed = True
        return best.get(self.start)


def check_query(profile: dict, query: str) -> bool:
    return GuardChecker(profile).check(query)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) not in (1, 2):
        print(
            "usage: guard_runtime.py profile.json [query]  "
            "(query read from stdin when omitted)",
            file=sys.stderr,
        )
        return 2
    with open(argv[0], encoding="utf-8") as handle:
        profile = json.load(handle)
    query = argv[1] if len(argv) == 2 else sys.stdin.read().rstrip("\n")
    checker = GuardChecker(profile)
    if checker.check(query):
        print("accept")
        return 0
    print("reject")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
