"""Grammar-guided remediation: synthesize, verify, and deploy fixes.

The analysis pipeline ends where the paper does — with a finding.  This
package closes the loop for each *confirmed* finding:

* :mod:`repro.remediate.synthesize` walks the finding's provenance back
  to the tainted source-expression byte spans and proposes candidate
  patches in preference order: a **prepared-statement rewrite** of the
  sink's query argument (tainted holes become ``?`` placeholders bound
  through the ``sqlciv_prepare`` shim), then a **policy-designated
  sanitizer insertion** (``mysql_real_escape_string`` / ``intval`` for
  SQL, ``htmlspecialchars`` with ``ENT_QUOTES`` for XSS contexts,
  ``escapeshellarg`` for shell, ``basename`` for path) wrapped around
  the latest point of the taint chain with a usable span;
* :mod:`repro.remediate.verify` re-runs the full static analysis on the
  patched tree — the finding must disappear and **no new finding may
  appear under any enabled policy** — and cross-checks with the concrete
  oracle interpreter on a witness input vector reconstructed from the
  finding's provenance (the vector that violated before the patch must
  be confined after it);
* :mod:`repro.remediate.guard` is the enforcement compiler: when no
  patch verifies, the hotspot's safe-query language (its scope grammar
  with every untrusted hole restricted to a check-specific safe
  sublanguage) is exported as a deployable JSON **guard profile**, and
  :mod:`repro.remediate.guard_runtime` is the standalone, stdlib-only
  reference checker that accepts exactly that language;
* :mod:`repro.remediate.engine` orchestrates the above per project and
  backs the ``sqlciv fix`` CLI, the daemon's ``fix`` op, and the SARIF
  ``fixes[]`` export.
"""

from .engine import RemediationReport, remediate_project
from .synthesize import Patch
from .verify import FindingKey, finding_key

__all__ = [
    "Patch",
    "RemediationReport",
    "remediate_project",
    "FindingKey",
    "finding_key",
]
