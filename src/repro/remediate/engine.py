"""The remediation engine: candidates → verification → report.

:func:`remediate_project` drives one project end-to-end.  Per entry
page it re-runs the string-taint analysis (it needs the page grammar for
guard compilation, not just the reports), collects the unsafe findings
in deterministic page/hotspot/finding order, and for each one tries the
candidate ladder:

1. prepared-statement rewrite (SQL sinks only),
2. policy-designated sanitizer insertion,
3. guard-profile fallback (always produced when neither patch verifies).

Patches are verified **cumulatively** on one scratch copy of the tree:
each candidate is spliced on top of every previously kept patch, the
whole project is re-analyzed, and the candidate is kept only when its
target finding disappears and no finding count rises anywhere — so the
final patch set is consistent as a whole, and a second engine run over
the applied tree synthesizes nothing (idempotence).  Because later
candidates' byte offsets were computed against the pristine tree, kept
splices are tracked per file in original coordinates and subsequent
patches are offset-shifted (candidates overlapping an earlier kept
splice are rejected — their finding is almost always already gone).
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field
from pathlib import Path
from types import SimpleNamespace

from repro.obs.metrics import PERF
from repro.obs.timeline import TIMELINE

from .guard import compile_guard
from .synthesize import (
    Patch,
    synthesize_prepared,
    synthesize_sanitizer,
)
from .verify import (
    ORACLE_STATIC_ONLY,
    Workspace,
    analyze_tree,
    finding_key,
    verify_patch,
)

STATUS_FIXED_PREPARED = "fixed-prepared"
STATUS_FIXED_SANITIZER = "fixed-sanitizer"
STATUS_ALREADY_FIXED = "fixed-by-earlier-patch"
STATUS_UNFIXABLE = "unfixable"

#: reason recorded when a candidate's splice lands inside a span an
#: earlier kept patch already rewrote
REASON_OVERLAP = "overlaps-earlier-patch"
#: reason recorded for the prepared rung on non-SQL findings
REASON_NOT_SQL = "not-a-sql-sink"


@dataclass
class FindingFix:
    """The engine's verdict for one unsafe finding."""

    page: str
    file: str          # project-root-relative
    line: int
    sink: str
    check: str
    policy: str
    category: str
    status: str = STATUS_UNFIXABLE
    #: candidate rung → machine-readable reason it did not apply/verify
    reasons: dict = field(default_factory=dict)
    diff: str = ""
    verification: dict | None = None
    oracle: str = ORACLE_STATIC_ONLY
    guard_path: str = ""
    guard_self_test: dict | None = None
    #: the kept patch (original-tree coordinates); not serialized
    patch: Patch | None = None

    @property
    def fixed(self) -> bool:
        return self.status.startswith("fixed")

    def as_dict(self) -> dict:
        out = {
            "page": self.page,
            "file": self.file,
            "line": self.line,
            "sink": self.sink,
            "check": self.check,
            "policy": self.policy,
            "category": self.category,
            "status": self.status,
            "reasons": dict(self.reasons),
            "oracle": self.oracle,
        }
        if self.diff:
            out["diff"] = self.diff
        if self.verification is not None:
            out["verification"] = self.verification
        if self.guard_path:
            out["guard"] = self.guard_path
        if self.guard_self_test is not None:
            out["guard_self_test"] = self.guard_self_test
        return out


@dataclass
class RemediationReport:
    """Everything one :func:`remediate_project` run decided."""

    root: str
    pages: list[str]
    entries: list[FindingFix] = field(default_factory=list)
    #: kept patches in verification order (original-tree coordinates)
    patches: list[Patch] = field(default_factory=list)
    diffs: list[str] = field(default_factory=list)
    applied: bool = False
    #: page results of the pre-patch analysis (``.page`` / ``.reports``),
    #: reusable for SARIF export
    page_results: list = field(default_factory=list)

    @property
    def fixed(self) -> list[FindingFix]:
        return [entry for entry in self.entries if entry.fixed]

    @property
    def unfixable(self) -> list[FindingFix]:
        return [entry for entry in self.entries if not entry.fixed]

    def as_dict(self) -> dict:
        return {
            "root": self.root,
            "pages": list(self.pages),
            "applied": self.applied,
            "findings": len(self.entries),
            "fixed": len(self.fixed),
            "unfixable": len(self.unfixable),
            "patches": [
                {
                    "file": patch.file,
                    "kind": patch.kind,
                    "description": patch.description,
                    "replacements": [
                        [start, end, text]
                        for start, end, text in patch.replacements
                    ],
                }
                for patch in self.patches
            ],
            "entries": [entry.as_dict() for entry in self.entries],
        }

    def render(self) -> str:
        lines = [
            f"remediation: {len(self.fixed)} fixed / "
            f"{len(self.unfixable)} unfixable "
            f"({len(self.entries)} unsafe finding(s), "
            f"{len(self.patches)} patch(es)"
            + (", applied)" if self.applied else ")")
        ]
        for entry in self.entries:
            head = (
                f"{entry.file}:{entry.line} ({entry.sink}, "
                f"{entry.policy}/{entry.check}): {entry.status}"
            )
            if entry.fixed and entry.oracle:
                head += f" [oracle: {entry.oracle}]"
            lines.append(head)
            if not entry.fixed:
                for rung, reason in entry.reasons.items():
                    lines.append(f"  {rung}: {reason}")
                if entry.guard_path:
                    lines.append(f"  guard profile: {entry.guard_path}")
        for diff in self.diffs:
            if diff:
                lines.append("")
                lines.append(diff.rstrip("\n"))
        return "\n".join(lines)

    def sarif_fixes(self) -> dict:
        """``(rel_file, line, sink, check, policy) → [fix]`` for the
        SARIF ``fixes[]`` export (:func:`repro.analysis.sarif.results_to_sarif`)."""
        root = Path(self.root)
        fixes: dict = {}
        for entry in self.entries:
            if not entry.fixed or entry.patch is None:
                continue
            key = (entry.file, entry.line, entry.sink, entry.check, entry.policy)
            fixes.setdefault(key, []).append(sarif_fix(entry.patch, root))
        return fixes


def sarif_fix(patch: Patch, root: Path) -> dict:
    """``patch`` as a SARIF 2.1.0 ``fix`` object (original-tree
    coordinates; charOffset/charLength per §3.30.11)."""
    from repro.analysis.sarif import _relative_uri

    return {
        "description": {"text": patch.description},
        "artifactChanges": [
            {
                "artifactLocation": _relative_uri(patch.file, root),
                "replacements": [
                    {
                        "deletedRegion": {
                            "charOffset": start,
                            "charLength": end - start,
                        },
                        "insertedContent": {"text": text},
                    }
                    for start, end, text in patch.replacements
                ],
            }
        ],
    }


def _shift_patch(patch: Patch, applied: dict[str, list]) -> Patch | None:
    """``patch`` translated from original-tree to current-workspace byte
    coordinates given the kept splices, or None when it overlaps one."""
    splices = applied.get(patch.file, [])
    shifted = []
    for start, end, replacement in patch.replacements:
        delta = 0
        for a_start, a_end, new_length in splices:
            if a_end <= start:
                delta += new_length - (a_end - a_start)
            elif a_start >= end:
                continue
            else:
                return None
        shifted.append((start + delta, end + delta, replacement))
    return Patch(
        file=patch.file,
        kind=patch.kind,
        replacements=shifted,
        description=patch.description,
    )


def _rel(path: str, root: Path) -> str:
    try:
        return Path(path).resolve().relative_to(root).as_posix()
    except ValueError:
        return Path(path).as_posix()


def remediate_project(
    project_root: str | Path,
    pages: list[str] | None = None,
    policies=None,
    apply: bool = False,
    guard_dir: str | Path | None = None,
    diff_dir: str | Path | None = None,
    parse_cache: dict | None = None,
    oracle: bool = True,
) -> RemediationReport:
    """Synthesize, verify, and (optionally) apply fixes for every unsafe
    finding of ``project_root``.

    ``pages`` are project-root-relative entry pages (default: the
    :func:`~repro.analysis.analyzer.entry_pages` heuristic); ``apply``
    writes kept patches back to the real tree; ``guard_dir`` /
    ``diff_dir`` export guard profiles and unified diffs; ``oracle``
    gates the concrete witness cross-check.
    """
    from repro.analysis.analyzer import _check_spot, entry_pages
    from repro.analysis.stringtaint import StringTaintAnalysis

    root = Path(project_root).resolve()
    if pages is None:
        pages = [
            page.relative_to(root).as_posix() for page in entry_pages(root)
        ]
    else:
        pages = [str(page) for page in pages]
    report = RemediationReport(root=str(root), pages=pages)

    with TIMELINE.phase("remediate"):
        # --- pre-patch analysis: grammars + reports, page by page -----
        work: list[tuple[str, object, object, object]] = []
        for page in pages:
            with PERF.timer("remediate.analyze"):
                analysis = StringTaintAnalysis(
                    root, parse_cache=parse_cache, policies=policies
                )
                result = analysis.analyze_file(root / page)
                reports = [
                    _check_spot(result.grammar, spot, policies)
                    for spot in result.hotspots
                ]
            report.page_results.append(
                SimpleNamespace(page=page, reports=reports)
            )
            for spot, spot_report in zip(result.hotspots, reports):
                for finding in spot_report.findings:
                    if not finding.safe:
                        work.append((page, result, spot, finding))

        if not work:
            return report

        # --- shared file/AST caches over the pristine tree ------------
        texts: dict[str, str] = {}
        trees: dict[str, object] = {}

        def read_source(file: str) -> str:
            if file not in texts:
                texts[file] = Path(file).read_text()
            return texts[file]

        def parse_source(file: str):
            for page_result in (result for _, result, _, _ in work):
                tree = page_result.trees.get(str(Path(file).resolve()))
                if tree is not None:
                    return tree
            if file not in trees:
                from repro.php.parser import PhpParseError, parse

                try:
                    trees[file] = parse(read_source(file), file)
                except (PhpParseError, OSError):
                    trees[file] = None
            return trees[file]

        workspace = Workspace(root)
        try:
            baseline = analyze_tree(workspace.root, pages, policies=policies)
            applied: dict[str, list] = {}
            rejected: dict[tuple, str] = {}
            kept_diffs: list[str] = []
            guard_dir_path = Path(guard_dir) if guard_dir else None
            if guard_dir_path:
                guard_dir_path.mkdir(parents=True, exist_ok=True)
            diff_dir_path = Path(diff_dir) if diff_dir else None
            if diff_dir_path:
                diff_dir_path.mkdir(parents=True, exist_ok=True)

            for page, result, spot, finding in work:
                entry = FindingFix(
                    page=page,
                    file=_rel(finding.file, root),
                    line=finding.line,
                    sink=finding.sink,
                    check=finding.check,
                    policy=finding.policy or "sql",
                    category=finding.category,
                )
                report.entries.append(entry)
                key = finding_key(finding, root)
                if baseline[key] == 0:
                    # an earlier kept patch already removed this key
                    entry.status = STATUS_ALREADY_FIXED
                    continue

                candidates: list[Patch] = []
                with PERF.timer("remediate.synthesize"):
                    if entry.policy == "sql":
                        tree = parse_source(finding.file)
                        if tree is None:
                            entry.reasons["prepared"] = (
                                "sink-file-unparseable"
                            )
                        else:
                            patch, reason = synthesize_prepared(
                                read_source(finding.file), tree, finding,
                                policies,
                            )
                            if patch is not None:
                                candidates.append(patch)
                            else:
                                entry.reasons["prepared"] = reason
                    else:
                        entry.reasons["prepared"] = REASON_NOT_SQL
                    patch, reason = synthesize_sanitizer(
                        finding, read_source, parse_source
                    )
                    if patch is not None:
                        candidates.append(patch)
                    else:
                        entry.reasons["sanitize"] = reason
                PERF.incr("remediate.candidates", len(candidates))

                for patch in candidates:
                    if patch.key() in rejected:
                        entry.reasons[patch.kind] = rejected[patch.key()]
                        continue
                    shifted = _shift_patch(patch, applied)
                    if shifted is None:
                        entry.reasons[patch.kind] = REASON_OVERLAP
                        continue
                    with PERF.timer("remediate.verify"):
                        verification, baseline_after = verify_patch(
                            workspace,
                            shifted,
                            [key],
                            pages,
                            baseline,
                            policies=policies,
                            oracle_findings=(
                                [(page, finding)] if oracle else None
                            ),
                        )
                    if not verification.verified:
                        rejected[patch.key()] = verification.reason
                        entry.reasons[patch.kind] = verification.reason
                        continue
                    baseline = baseline_after
                    for start, end, text in patch.replacements:
                        applied.setdefault(patch.file, []).append(
                            (start, end, len(text))
                        )
                    entry.status = (
                        STATUS_FIXED_PREPARED
                        if patch.kind == "prepared"
                        else STATUS_FIXED_SANITIZER
                    )
                    entry.diff = patch.unified_diff(
                        read_source(patch.file), _rel(patch.file, root)
                    )
                    entry.verification = verification.as_dict()
                    entry.patch = patch
                    entry.oracle = verification.oracle
                    report.patches.append(patch)
                    kept_diffs.append(entry.diff)
                    PERF.incr("remediate.verified")
                    break

                if not entry.fixed:
                    with PERF.timer("remediate.guard"):
                        profile = compile_guard(
                            result.grammar,
                            spot.query.nt,
                            finding,
                            site={
                                "file": entry.file,
                                "line": entry.line,
                                "sink": entry.sink,
                                "page": page,
                            },
                        )
                    entry.guard_self_test = profile["self_test"]
                    PERF.incr("remediate.guards")
                    if guard_dir_path:
                        stem = Path(entry.file).stem
                        name = (
                            f"guard-{len(report.entries):03d}-{stem}"
                            f"-L{entry.line}-{entry.check}.json"
                        )
                        path = guard_dir_path / name
                        path.write_text(
                            json.dumps(profile, indent=2, sort_keys=True)
                            + "\n"
                        )
                        entry.guard_path = str(path)

            report.diffs = kept_diffs
            if diff_dir_path:
                for index, (patch, diff) in enumerate(
                    zip(report.patches, kept_diffs), start=1
                ):
                    stem = Path(patch.file).stem
                    name = f"fix-{index:03d}-{patch.kind}-{stem}.diff"
                    (diff_dir_path / name).write_text(diff)

            if apply and applied:
                for file in applied:
                    Path(file).write_text(workspace.read(file))
                report.applied = True
        finally:
            workspace.close()

    return report


def fix_main(argv: list[str] | None = None) -> int:
    """``sqlciv fix`` — synthesize and verify patches for a project."""
    from repro.analysis.cli import EXIT_USAGE, EXIT_VERIFIED, EXIT_VIOLATIONS

    parser = argparse.ArgumentParser(
        prog="sqlciv fix",
        description=(
            "Synthesize, verify, and optionally apply fixes for every "
            "unsafe finding (prepared-statement rewrites, sanitizer "
            "insertions, guard profiles for the rest)."
        ),
    )
    parser.add_argument("root", help="project root directory")
    parser.add_argument(
        "pages", nargs="*",
        help="entry pages to remediate (default: every top-level page)",
    )
    parser.add_argument(
        "--policy-config", metavar="FILE",
        help="policy YAML enabling additional sink policies",
    )
    parser.add_argument(
        "--apply", action="store_true",
        help="write verified patches back to the project tree",
    )
    parser.add_argument(
        "--json", action="store_true", help="machine-readable report"
    )
    parser.add_argument(
        "--sarif", metavar="FILE",
        help="write the findings + fixes[] as a SARIF 2.1.0 log",
    )
    parser.add_argument(
        "--diff-dir", metavar="DIR",
        help="write each verified patch as a unified diff file",
    )
    parser.add_argument(
        "--guard-dir", metavar="DIR",
        help="write a guard profile JSON for each unfixable finding",
    )
    parser.add_argument(
        "--no-oracle", action="store_true",
        help="skip the concrete witness cross-check",
    )
    args = parser.parse_args(argv)

    root = Path(args.root)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return EXIT_USAGE
    policies = None
    if args.policy_config:
        from repro.analysis.policies import (
            PolicyConfigError,
            load_policy_config,
        )

        try:
            policies = load_policy_config(args.policy_config)
        except PolicyConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE

    report = remediate_project(
        root,
        pages=args.pages or None,
        policies=policies,
        apply=args.apply,
        guard_dir=args.guard_dir,
        diff_dir=args.diff_dir,
        oracle=not args.no_oracle,
    )

    if args.sarif:
        from repro.analysis.sarif import write_sarif

        write_sarif(
            args.sarif, root, report.page_results, policies,
            fixes=report.sarif_fixes(),
        )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render())
    if not report.entries or not report.unfixable:
        return EXIT_VERIFIED
    return EXIT_VIOLATIONS
