"""Patch verification: static re-analysis + concrete oracle cross-check.

A candidate patch is **verified** only when all of the following hold on
a scratch copy of the project with the patch applied:

1. every patched file still parses, and each inserted expression
   round-trips through the PHP parser to a byte-identical AST-relevant
   rendering (the splice parsed as intended, not merged into a
   neighboring construct);
2. re-running the full static analysis (same pages, same policy
   config), the target finding's key disappears from the finding
   multiset and **no key's count increases** — no new finding under any
   enabled policy.  Keys are line-free
   (``(file, sink, policy, check, category)``) so single-line splices
   that shift later line numbers cannot masquerade as new findings;
3. when the finding's provenance names superglobal sources with
   concrete keys, the original witness vector is replayed through the
   concrete oracle interpreter: it must produce an *unconfined* tainted
   run at the sink on the unpatched tree (the violation is real and
   reproducible) and only confined runs on the patched tree.  Findings
   whose sources cannot be driven from request inputs (``$_SERVER``,
   database reads) are verified **static-only** and say so.
"""

from __future__ import annotations

import shutil
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.metrics import PERF
from repro.php import ast
from repro.php.parser import PhpParseError, parse

#: oracle cross-check statuses
ORACLE_CONFIRMED = "confirmed"        # violated before, confined after
ORACLE_STATIC_ONLY = "static-only"    # no constructible witness vector
ORACLE_FAILED = "failed"              # patched tree still violates

FindingKey = tuple[str, str, str, str, str]


def finding_key(finding, root: Path) -> FindingKey:
    """Line-free identity of a finding for before/after comparison."""
    try:
        rel = Path(finding.file).resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        rel = Path(finding.file).as_posix()
    return (
        rel,
        finding.sink,
        finding.policy or "sql",
        finding.check,
        finding.category,
    )


def finding_multiset(page_results, root: Path) -> Counter:
    """Unsafe-finding keys over a run's page results."""
    keys: Counter = Counter()
    for page_result in page_results:
        for report in page_result.reports:
            for finding in report.findings:
                if not finding.safe:
                    keys[finding_key(finding, root)] += 1
    return keys


# ---------------------------------------------------------------------------
# parser round-trip
# ---------------------------------------------------------------------------


def canonical_render(node) -> str:
    """Deterministic structural rendering of an AST (spans and lines
    excluded) — equal renderings mean AST-identical programs."""
    if isinstance(node, ast.Node):
        fields = []
        for name, value in sorted(vars(node).items()):
            if name in ("line", "span"):
                continue
            fields.append(f"{name}={canonical_render(value)}")
        return f"{type(node).__name__}({', '.join(fields)})"
    if isinstance(node, list):
        return "[" + ", ".join(canonical_render(item) for item in node) + "]"
    if isinstance(node, tuple):
        return "(" + ", ".join(canonical_render(item) for item in node) + ")"
    return repr(node)


def roundtrip_patch(patched_text: str, patch, path: str) -> str | None:
    """None when the patch round-trips; otherwise the failure reason.

    The patched file must parse, and each inserted replacement text,
    parsed stand-alone as an expression, must render byte-identically to
    a subtree of the patched file's AST — i.e. the splice means in
    context exactly what it means in isolation.
    """
    try:
        tree = parse(patched_text, path)
    except PhpParseError as exc:
        return f"patched file no longer parses: {exc}"
    rendered_tree = canonical_render(tree)
    for _start, _end, replacement in patch.replacements:
        try:
            snippet = parse(f"<?php ({replacement});", path)
        except PhpParseError as exc:
            return f"replacement does not parse as an expression: {exc}"
        body = snippet.body.statements
        if len(body) != 1 or not isinstance(body[0], ast.ExprStmt):
            return "replacement is not a single expression"
        expected = canonical_render(body[0].expr)
        if expected not in rendered_tree:
            return (
                "replacement parsed differently in context than in "
                "isolation"
            )
    return None


# ---------------------------------------------------------------------------
# witness vectors from provenance
# ---------------------------------------------------------------------------

#: superglobal name → InputVector table
_VECTOR_TABLES = {
    "_GET": "get",
    "HTTP_GET_VARS": "get",
    "_REQUEST": "get",
    "_POST": "post",
    "HTTP_POST_VARS": "post",
    "_COOKIE": "cookie",
    "HTTP_COOKIE_VARS": "cookie",
    "_SESSION": "session",
    "HTTP_SESSION_VARS": "session",
}

#: attack value used when the finding carries no witness substring
_DEFAULT_ATTACK = "' OR '1'='1"


def witness_vector(finding):
    """An :class:`~repro.oracle.interp.InputVector` reconstructed from
    the finding's provenance sources, or None when any source is not a
    keyed request superglobal (``$_SERVER``, database reads, dynamic
    keys — no witness is constructible)."""
    from repro.oracle.interp import InputVector

    provenance = finding.provenance
    if provenance is None or not provenance.sources:
        return None
    tables: dict[str, dict[str, str]] = {
        "get": {}, "post": {}, "cookie": {}, "session": {},
    }
    value = finding.witness or _DEFAULT_ATTACK
    for event in provenance.sources:
        table = _VECTOR_TABLES.get(event.get("name", ""))
        key = event.get("key")
        if table is None or not key:
            return None
        tables[table][str(key)] = value
    return InputVector(
        get=tables["get"],
        post=tables["post"],
        cookie=tables["cookie"],
        session=tables["session"],
    )


def _run_confined(query: str, lo: int, hi: int, policy: str) -> bool:
    """Is the exact tainted run ``query[lo:hi]`` confined for ``policy``?"""
    if policy == "shell":
        from repro.analysis.policies.shell import shell_breakout

        return not shell_breakout().accepts_string(query[lo:hi])
    from repro.sql.confinement import check_confinement

    try:
        return check_confinement(query, lo, hi).confined
    except ValueError:
        return False


def oracle_unconfined(
    project_root: Path, entry: str, finding, vector
) -> bool | None:
    """Replay ``vector``; True when some sink hit matching the finding's
    (file, sink) has an unconfined exact tainted run, False when every
    matching run is confined, None when the execution left the mirrored
    subset (oracle cannot decide)."""
    from repro.analysis import sources as sink_tables
    from repro.oracle.interp import UnsupportedConstruct, execute_page

    policy = finding.policy or "sql"
    if policy not in ("sql", "shell"):
        return None
    extra_sinks = (
        dict(sink_tables.SHELL_FUNCTIONS) if policy == "shell" else None
    )
    try:
        hits = execute_page(
            project_root, entry, vector, extra_sinks=extra_sinks
        )
    except UnsupportedConstruct:
        return None
    target_name = Path(finding.file).name
    saw_hit = False
    for hit in hits:
        if hit.sink != finding.sink or Path(hit.file).name != target_name:
            continue
        saw_hit = True
        for lo, hi, exact in hit.runs:
            if not exact or lo == hi:
                continue
            if not _run_confined(hit.query, lo, hi, policy):
                return True
    return False if saw_hit else None


# ---------------------------------------------------------------------------
# the verifier
# ---------------------------------------------------------------------------


@dataclass
class Verification:
    """Everything one patch's verification produced."""

    verified: bool = False
    reason: str = ""
    oracle: str = ORACLE_STATIC_ONLY
    #: keys whose count rose on the patched tree (regressions)
    new_keys: list[FindingKey] = field(default_factory=list)
    #: target keys that failed to disappear
    surviving: list[FindingKey] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "verified": self.verified,
            "reason": self.reason,
            "oracle": self.oracle,
            "new_findings": [list(key) for key in self.new_keys],
            "surviving": [list(key) for key in self.surviving],
        }


class Workspace:
    """A scratch copy of the project the engine patches cumulatively."""

    def __init__(self, project_root: Path) -> None:
        self.original_root = Path(project_root).resolve()
        import tempfile

        self._tmp = tempfile.mkdtemp(prefix="sqlciv-fix-")
        self.root = Path(self._tmp) / "tree"
        shutil.copytree(self.original_root, self.root)

    def close(self) -> None:
        shutil.rmtree(self._tmp, ignore_errors=True)

    def map_path(self, original_file: str | Path) -> Path:
        rel = Path(original_file).resolve().relative_to(self.original_root)
        return self.root / rel

    def read(self, original_file: str | Path) -> str:
        return self.map_path(original_file).read_text()

    def write(self, original_file: str | Path, text: str) -> None:
        self.map_path(original_file).write_text(text)


def analyze_tree(root: Path, pages: list[str], policies=None) -> Counter:
    """Unsafe-finding multiset of ``root`` (serial, uncached — the
    verifier must see exactly the current bytes on disk)."""
    from repro.analysis.analyzer import run_pages

    with PERF.timer("remediate.reanalysis"):
        results = run_pages(
            root, [root / page for page in pages], audit=False, jobs=1,
            policies=policies,
        )
    return finding_multiset(results, root)


def verify_patch(
    workspace: Workspace,
    patch,
    target_keys: list[FindingKey],
    pages: list[str],
    baseline: Counter,
    policies=None,
    oracle_findings: list[tuple[str, object]] | None = None,
) -> tuple[Verification, Counter]:
    """Apply ``patch`` on the workspace, verify, and either keep it
    (returning the new baseline multiset) or revert it.

    ``baseline`` is the finding multiset of the workspace *before* this
    patch; ``target_keys`` the keys this patch must remove (one entry
    per addressed finding).  ``oracle_findings`` is a list of
    ``(entry_page, finding)`` pairs to cross-check concretely.
    """
    verification = Verification()
    original_texts = {patch.file: workspace.read(patch.file)}
    patched_text = patch.apply(original_texts[patch.file])

    failure = roundtrip_patch(patched_text, patch, patch.file)
    if failure is not None:
        verification.reason = f"round-trip: {failure}"
        return verification, baseline

    # concrete pre-check on the unpatched workspace: the witness vector
    # must actually violate (otherwise the oracle can't confirm the fix)
    oracle_status = ORACLE_STATIC_ONLY
    replayable: list[tuple[str, object, object]] = []
    for entry, finding in oracle_findings or ():
        vector = witness_vector(finding)
        if vector is None:
            continue
        before = oracle_unconfined(workspace.root, entry, finding, vector)
        if before is True:
            replayable.append((entry, finding, vector))

    workspace.write(patch.file, patched_text)
    patched = analyze_tree(workspace.root, pages, policies=policies)

    regressions = [key for key in patched if patched[key] > baseline[key]]
    needed: Counter = Counter(target_keys)
    surviving = [
        key
        for key, count in needed.items()
        if patched[key] > baseline[key] - count
    ]
    if regressions or surviving:
        workspace.write(patch.file, original_texts[patch.file])
        verification.new_keys = sorted(regressions)
        verification.surviving = sorted(surviving)
        verification.reason = (
            "re-analysis: new findings appeared"
            if regressions
            else "re-analysis: target finding survived the patch"
        )
        return verification, baseline

    for entry, finding, vector in replayable:
        after = oracle_unconfined(workspace.root, entry, finding, vector)
        if after is True:
            workspace.write(patch.file, original_texts[patch.file])
            verification.reason = (
                "oracle: witness vector still produces an unconfined "
                "tainted run on the patched tree"
            )
            verification.oracle = ORACLE_FAILED
            return verification, baseline
        oracle_status = ORACLE_CONFIRMED

    verification.verified = True
    verification.oracle = oracle_status
    return verification, patched
