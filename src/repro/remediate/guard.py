"""The enforcement compiler: hotspot scope grammar → deployable guard.

When no patch verifies for a finding (or a deployment wants defense in
depth on top of a patch), the hotspot's **safe-query automaton** is
exported instead: the per-hotspot scope grammar with every maximal
labeled (untrusted) nonterminal's productions replaced by a
check-specific *safe-hole sublanguage*:

* quote-confinement checks (``odd-quotes``, ``literal-break``) — any
  characters except quotes and backslash (data that cannot close a
  string literal);
* numeric / structural checks (``numeric``, ``derivability``,
  ``attack-string``, ``tokenization``) — an optionally-signed integer;
* policy sinks get their policy's safe charset (shell: no
  metacharacters; XSS: no markup-significant characters; path: no
  separators or dots; eval: the empty string only).

The profile is plain JSON (see :data:`~.guard_runtime.GUARD_PROFILE_VERSION`)
checked by the stdlib-only :mod:`repro.remediate.guard_runtime` Earley
recognizer.  Every exported profile is **self-tested** at compile time:
the finding's violating example query must be rejected and a shortest
safe query must be accepted; both the examples and the verdicts are
recorded in the profile, so a deployment can re-run the self-test on
its own copy.
"""

from __future__ import annotations

from repro.analysis.policy import maximal_labeled
from repro.lang.charset import CharSet
from repro.lang.grammar import Grammar, Lit, Nonterminal

from .guard_runtime import GUARD_PROFILE_VERSION, GuardChecker

#: SQL cascade checks whose findings sit inside string literals — the
#: safe hole is "cannot escape the literal"
_QUOTED_CHECKS = frozenset({"odd-quotes", "literal-break"})

_DIGITS = ((ord("0"), ord("9")),)

#: printable ASCII minus the excluded characters, as interval tuples
def _printable_minus(excluded: str) -> tuple[tuple[int, int], ...]:
    banned = {ord(char) for char in excluded}
    intervals: list[tuple[int, int]] = []
    start = None
    for code in range(0x20, 0x7F):
        if code in banned:
            if start is not None:
                intervals.append((start, code - 1))
                start = None
        elif start is None:
            start = code
    if start is not None:
        intervals.append((start, 0x7E))
    return tuple(intervals)


def safe_hole_intervals(
    check: str, policy: str
) -> tuple[tuple[int, int], ...] | None:
    """Character intervals of the safe-hole language, or None for the
    numeric (signed-integer) shape, or ``()`` for ε-only (eval)."""
    policy = policy or "sql"
    if policy == "sql":
        if check in _QUOTED_CHECKS:
            return _printable_minus("'\"\\")
        return None   # numeric shape
    if policy in ("xss", "xss-context"):
        return _printable_minus("<>&\"'`")
    if policy == "shell":
        return _printable_minus("'\"`\\|&;$<>(){}!*?~#\n")
    if policy == "path":
        return _printable_minus("/\\.\0")
    if policy == "eval":
        return ()
    return _printable_minus("'\"\\")


def _symbol_json(symbol, names: dict[int, str]):
    if isinstance(symbol, Lit):
        return ["lit", symbol.text]
    if isinstance(symbol, CharSet):
        return ["set", [[lo, hi] for lo, hi in symbol.intervals]]
    return ["nt", names[id(symbol)]]


def _hole_productions(
    intervals: tuple[tuple[int, int], ...] | None, hole: str
) -> list[list]:
    """Safe-hole rules in profile JSON form (star over a charset, the
    signed-integer shape, or ε-only)."""
    if intervals is None:
        digits = ["set", [[lo, hi] for lo, hi in _DIGITS]]
        body = f"{hole}#digits"
        return [
            [["nt", body]],
            [["lit", "-"], ["nt", body]],
        ], [[digits], [["nt", body], digits]]
    if not intervals:
        return [[]], None   # ε only
    charset = ["set", [[lo, hi] for lo, hi in intervals]]
    return [[], [["nt", hole], charset]], None


def _witness_example(profile: dict, witness: str) -> str:
    """A shortest query with ``witness`` in every untrusted hole — the
    reject example when the finding carries no full example query.

    Built by re-deriving the profile's shortest string over a variant
    grammar whose holes produce exactly the witness: the result is a
    minimal hotspot query shaped like the attack, which the real
    (confined) profile must reject.
    """
    if not witness or not profile["holes"]:
        return ""
    productions = dict(profile["productions"])
    for hole in profile["holes"]:
        productions[hole] = [[["lit", witness]]]
    variant = {**profile, "productions": productions}
    return (
        _shortest_via(
            GuardChecker(variant), set(profile["holes"]), profile["start"]
        )
        or ""
    )


def _shortest_via(checker: GuardChecker, marked: set[str], start: str) -> str | None:
    """A shortest string of ``checker``'s grammar whose derivation passes
    through a ``marked`` nonterminal (None when no such string exists) —
    the plain shortest string may skip the holes entirely (an optional
    loop body), which would make the reject example vacuous."""
    rules = checker.rules
    best: dict[str, str] = {}
    via: dict[str, str] = {}
    changed = True
    while changed:
        changed = False
        for name, alternatives in rules.items():
            for rhs in alternatives:
                pieces: list[str | None] = []
                for symbol in rhs:
                    if symbol[0] == "c":
                        pieces.append(symbol[1])
                    elif symbol[0] == "set":
                        pieces.append(chr(symbol[1][0][0]))
                    else:
                        pieces.append(best.get(symbol[1]))
                if all(piece is not None for piece in pieces):
                    candidate = "".join(pieces)
                    current = best.get(name)
                    if current is None or len(candidate) < len(current):
                        best[name] = candidate
                        changed = True
                # the via-string routes exactly one position through a
                # marked (or transitively via-capable) nonterminal
                for carrier, symbol in enumerate(rhs):
                    if symbol[0] != "nt":
                        continue
                    target = symbol[1]
                    carried = (
                        best.get(target)
                        if target in marked
                        else via.get(target)
                    )
                    if carried is None:
                        continue
                    parts = list(pieces)
                    parts[carrier] = carried
                    if any(piece is None for piece in parts):
                        continue
                    candidate = "".join(parts)
                    current = via.get(name)
                    if current is None or len(candidate) < len(current):
                        via[name] = candidate
                        changed = True
    if start in marked:
        return best.get(start)
    return via.get(start)


def compile_guard(
    grammar: Grammar,
    root: Nonterminal,
    finding,
    site: dict | None = None,
) -> dict:
    """The guard profile for one hotspot scope and one finding.

    ``grammar`` is the page grammar; ``root`` the hotspot's query
    nonterminal.  The profile's language is the scope grammar with each
    maximal labeled nonterminal confined to the finding's safe-hole
    sublanguage; the finding's ``example_query`` (when present) is the
    recorded reject example.
    """
    scope = grammar.subgrammar(root).trim(root)
    order = scope.canonical_order(root)
    names: dict[int, str] = {}
    for index, nt in enumerate(order):
        names[id(nt)] = f"{nt.name}@{index}"
    holes = [nt for nt in maximal_labeled(scope, root) if id(nt) in names]
    hole_ids = {id(nt) for nt in holes}
    # nonterminals only reachable through a hole's original productions
    # are dropped with them: rebuild reachability over the kept rules
    intervals = safe_hole_intervals(finding.check, finding.policy)
    productions: dict[str, list] = {}
    for nt in order:
        name = names[id(nt)]
        if id(nt) in hole_ids:
            rules, extra = _hole_productions(intervals, name)
            productions[name] = rules
            if extra is not None:
                productions[f"{name}#digits"] = extra
            continue
        rules = []
        for rhs in scope.productions.get(nt, ()):
            if any(
                isinstance(sym, Nonterminal) and id(sym) not in names
                for sym in rhs
            ):
                continue
            rules.append([_symbol_json(sym, names) for sym in rhs])
        productions[name] = rules
    profile: dict = {
        "version": GUARD_PROFILE_VERSION,
        "generator": "sqlciv",
        "site": dict(site or {}),
        "check": finding.check,
        "policy": finding.policy or "sql",
        "start": names[id(root)],
        "holes": [names[id(nt)] for nt in holes],
        "productions": productions,
    }
    checker = GuardChecker(profile)
    accept_example = checker.shortest_string()
    reject_example = finding.example_query or _witness_example(
        profile, finding.witness
    )
    self_test = {
        "example_accepted": (
            checker.check(accept_example)
            if accept_example is not None
            else None
        ),
        "witness_rejected": (
            not checker.check(reject_example) if reject_example else None
        ),
    }
    profile["examples"] = {
        "accept": accept_example,
        "reject": reject_example or None,
    }
    profile["self_test"] = self_test
    return profile
