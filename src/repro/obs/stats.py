"""``sqlciv stats timeline.json`` — gantt + bottleneck report.

Consumes a :data:`~repro.obs.timeline.TIMELINE_FORMAT` document and
answers the question the raw profile table cannot: *where did the wall
time go, per worker lane, and which phase dominates the serial part of
the run*.  Three accounting notions, kept deliberately distinct:

**busy time**
    the sum of page durations (wherever they ran) plus driver-side
    top-level spans.  On an N-lane run busy time may approach N× wall;
    it is the denominator for phase attribution, so percentages are
    about *work*, not elapsed time.

**self time**
    a span's duration minus its children's — the time spent in that
    phase itself.  Self times of all spans in a page telescope to the
    page's top-level span coverage; whatever the top-level spans do not
    cover is reported as ``(unattributed)`` slack.  The acceptance bar
    is slack < 10% of busy time.

**serial windows**
    maximal intervals of the run during which at most one lane was
    busy.  Phase self time falling inside these windows is work that no
    amount of extra workers can hide — the report names the phase that
    dominates them, which is the explanation for parallel speedups
    stuck near (or below) 1.0.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict

from repro.obs.timeline import load_timeline

UNATTRIBUTED = "(unattributed)"

_GANTT_WIDTH = 64
_GANTT_CHARS = " ░▒▓█"


def _span_end(span: dict) -> float:
    return span["start"] + span["dur"]


def _subtract(interval: tuple[float, float],
              holes: list[tuple[float, float]]) -> list[tuple[float, float]]:
    """``interval`` minus the (sorted, contained, disjoint) ``holes``."""
    lo, hi = interval
    out = []
    cursor = lo
    for a, b in holes:
        a, b = max(a, cursor), min(b, hi)
        if a > cursor:
            out.append((cursor, a))
        cursor = max(cursor, b)
    if hi > cursor:
        out.append((cursor, hi))
    return out


def _self_segments(spans: list[dict]) -> list[tuple[str, float, float]]:
    """``(phase, start, end)`` self-time segments for a flat span list."""
    children: dict[int, list[tuple[float, float]]] = defaultdict(list)
    for span in spans:
        parent = span.get("parent")
        if parent is not None:
            children[parent].append((span["start"], _span_end(span)))
    segments = []
    for index, span in enumerate(spans):
        holes = sorted(children.get(index, ()))
        for a, b in _subtract((span["start"], _span_end(span)), holes):
            if b > a:
                segments.append((span["phase"], a, b))
    return segments


def _page_segments(page: dict) -> list[tuple[str, float, float]]:
    """Self-time segments for one page, including the unattributed gap
    between the page bounds and its top-level span coverage."""
    segments = _self_segments(page["spans"])
    top = sorted(
        (s["start"], _span_end(s))
        for s in page["spans"]
        if s.get("parent") is None
    )
    for a, b in _subtract((page["start"], page["start"] + page["dur"]), top):
        if b > a:
            segments.append((UNATTRIBUTED, a, b))
    return segments


def _lane_intervals(timeline: dict) -> dict[int, list[tuple[float, float]]]:
    """Busy intervals per lane: pages on their lanes, driver top-level
    spans on lane 0."""
    intervals: dict[int, list[tuple[float, float]]] = defaultdict(list)
    for page in timeline["pages"]:
        intervals[page["lane"]].append(
            (page["start"], page["start"] + page["dur"])
        )
    for span in timeline["driver_spans"]:
        if span.get("parent") is None:
            intervals[0].append((span["start"], _span_end(span)))
    for lane in intervals:
        intervals[lane].sort()
    return intervals


def _serial_windows(
    intervals: dict[int, list[tuple[float, float]]],
) -> list[tuple[float, float]]:
    """Maximal windows with at most one lane busy (idle counts too)."""
    events: list[tuple[float, int]] = []
    for lane_intervals in intervals.values():
        for a, b in lane_intervals:
            events.append((a, 1))
            events.append((b, -1))
    if not events:
        return []
    events.sort()
    windows = []
    active = 0
    serial_since: float | None = events[0][0]
    cursor = events[0][0]
    for t, delta in events:
        if t > cursor:
            if active <= 1 and serial_since is None:
                serial_since = cursor
            elif active > 1 and serial_since is not None:
                windows.append((serial_since, cursor))
                serial_since = None
            cursor = t
        active += delta
    if serial_since is not None and cursor > serial_since:
        windows.append((serial_since, cursor))
    # merge adjacent
    merged: list[tuple[float, float]] = []
    for a, b in windows:
        if merged and a <= merged[-1][1] + 1e-12:
            merged[-1] = (merged[-1][0], max(merged[-1][1], b))
        else:
            merged.append((a, b))
    return merged


def _overlap(segments: list[tuple[str, float, float]],
             windows: list[tuple[float, float]]) -> dict[str, float]:
    """Per-phase seconds of segment time falling inside the windows."""
    totals: dict[str, float] = defaultdict(float)
    if not windows:
        return totals
    windows = sorted(windows)
    for phase, a, b in segments:
        for wa, wb in windows:
            if wb <= a:
                continue
            if wa >= b:
                break
            totals[phase] += min(b, wb) - max(a, wa)
    return totals


def summarize(timeline: dict) -> dict:
    """The machine-readable bottleneck summary for one timeline."""
    pages = timeline["pages"]
    driver_spans = timeline["driver_spans"]
    wall = timeline["wall_seconds"]

    busy = sum(p["dur"] for p in pages) + sum(
        s["dur"] for s in driver_spans if s.get("parent") is None
    )

    segments: list[tuple[str, float, float]] = []
    for page in pages:
        segments.extend(_page_segments(page))
    segments.extend(_self_segments(driver_spans))

    phase_self: dict[str, float] = defaultdict(float)
    for phase, a, b in segments:
        phase_self[phase] += b - a

    attributed = sum(v for k, v in phase_self.items() if k != UNATTRIBUTED)
    slack = phase_self.get(UNATTRIBUTED, 0.0)

    intervals = _lane_intervals(timeline)
    windows = _serial_windows(intervals)
    serial_seconds = sum(b - a for a, b in windows)
    serial_by_phase = _overlap(segments, windows)

    named = {k: v for k, v in phase_self.items() if k != UNATTRIBUTED}
    bottleneck = max(named, key=named.get) if named else None
    phases = {
        phase: {
            "self_seconds": round(seconds, 6),
            "busy_fraction": round(seconds / busy, 4) if busy else 0.0,
            "serial_seconds": round(serial_by_phase.get(phase, 0.0), 6),
        }
        for phase, seconds in sorted(
            phase_self.items(), key=lambda item: -item[1]
        )
    }
    return {
        "wall_seconds": round(wall, 6),
        "busy_seconds": round(busy, 6),
        "pages": len(pages),
        "lanes": len(timeline["lanes"]),
        "attributed_seconds": round(attributed, 6),
        "attributed_fraction": round(attributed / busy, 4) if busy else 1.0,
        "unattributed_seconds": round(slack, 6),
        "serial_seconds": round(serial_seconds, 6),
        "serial_fraction": round(serial_seconds / wall, 4) if wall else 0.0,
        "bottleneck": bottleneck,
        "phases": phases,
    }


def _gantt(timeline: dict) -> list[str]:
    wall = timeline["wall_seconds"]
    if wall <= 0:
        return []
    intervals = _lane_intervals(timeline)
    labels = {
        lane["lane"]: (
            "driver" if lane["role"] == "driver"
            else f"worker {lane['lane']}"
        )
        for lane in timeline["lanes"]
    }
    width = max(len(label) for label in labels.values()) if labels else 6
    cell = wall / _GANTT_WIDTH
    rows = []
    for lane_id in sorted(labels):
        coverage = [0.0] * _GANTT_WIDTH
        for a, b in intervals.get(lane_id, ()):
            first = int(a / cell)
            last = min(_GANTT_WIDTH - 1, int(b / cell))
            for col in range(first, last + 1):
                lo, hi = col * cell, (col + 1) * cell
                coverage[col] += max(0.0, min(b, hi) - max(a, lo))
        cells = "".join(
            _GANTT_CHARS[min(len(_GANTT_CHARS) - 1,
                             int(c / cell * (len(_GANTT_CHARS) - 1) + 0.5))]
            for c in coverage
        )
        rows.append(f"  {labels[lane_id]:<{width}} |{cells}|")
    rows.append(f"  {'':<{width}}  0s{'wall ' + _fmt_s(wall):>{_GANTT_WIDTH}}")
    return rows


def _fmt_s(seconds: float) -> str:
    return f"{seconds:.3f}s" if seconds < 100 else f"{seconds:.1f}s"


def render_report(timeline: dict) -> str:
    """The human-readable gantt + bottleneck report."""
    summary = summarize(timeline)
    attrs = timeline.get("attrs", {})
    workers = summary["lanes"] - 1
    lines = ["== sqlciv timeline report =="]
    subject = attrs.get("root") or attrs.get("subject")
    if subject:
        lines.append(f"subject: {subject}")
    lines.append(
        f"run: wall {_fmt_s(summary['wall_seconds'])}"
        f" | {summary['pages']} page(s)"
        f" | {workers} worker lane(s) + driver"
    )
    lines.append("")
    lines.extend(_gantt(timeline))
    lines.append("")

    busy = summary["busy_seconds"]
    wall = summary["wall_seconds"]
    ratio = f" = {busy / wall * 100:.0f}% of wall" if wall else ""
    lines.append(f"phase attribution (busy {_fmt_s(busy)}{ratio}):")
    name_width = max(
        [len(UNATTRIBUTED)] + [len(p) for p in summary["phases"]]
    )
    for phase, stats in summary["phases"].items():
        fraction = stats["busy_fraction"]
        bar = "█" * max(1, round(fraction * 24)) if fraction > 0 else ""
        lines.append(
            f"  {phase:<{name_width}}  {stats['self_seconds']:>9.3f}s"
            f"  {fraction * 100:>5.1f}%  {bar}"
        )
    lines.append("")
    lines.append(
        f"attributed: {summary['attributed_fraction'] * 100:.1f}% of busy"
        f" time (unattributed slack"
        f" {_fmt_s(summary['unattributed_seconds'])})"
    )
    lines.append(
        f"serial windows (<=1 lane busy):"
        f" {summary['serial_fraction'] * 100:.1f}% of run wall"
    )
    bottleneck = summary["bottleneck"]
    if bottleneck:
        stats = summary["phases"][bottleneck]
        serial_total = summary["serial_seconds"]
        serial_share = (
            f", {stats['serial_seconds'] / serial_total * 100:.1f}%"
            f" of serial-window time" if serial_total else ""
        )
        lines.append(
            f"bottleneck: {bottleneck} —"
            f" {stats['busy_fraction'] * 100:.1f}% of busy time"
            f"{serial_share}"
        )
    else:
        lines.append("bottleneck: none (no attributed phases)")
    return "\n".join(lines) + "\n"


def stats_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sqlciv stats",
        description="Render the gantt + bottleneck report for a "
                    "--profile=timeline capture.",
    )
    parser.add_argument("timeline", help="path to a timeline.json capture")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable summary instead of the report",
    )
    args = parser.parse_args(argv)
    try:
        timeline = load_timeline(args.timeline)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"sqlciv stats: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(summarize(timeline), indent=2))
    else:
        sys.stdout.write(render_report(timeline))
    return 0
