"""The per-worker timeline profiler (``--profile=timeline``).

Where ``--profile`` answers "how much, in total" and ``--trace`` answers
"under which include", the timeline answers the scheduling question the
parallel-speedup mystery needs: **which worker was doing which phase,
when**.  It records flat, phase-tagged spans —

``parse``, ``include``, ``absdom`` (the phase-1 abstract
interpretation), ``verdict-memo`` (lookup, hit or miss),
``cascade:<policy>`` (the phase-2 check cascade), ``prefilter``,
``image.construct`` / ``image.rebind``, ``audit``, ``cache.page_load``,
and ``pickle`` (result serialization for the IPC hop)

— per page, wherever the page actually ran.  Each page's spans travel
home inside the picklable :class:`~repro.analysis.analyzer.PageResult`
(tagged with the recording process id), and the driver assembles one
``timeline.json`` with a **lane** per worker process: lane 0 is the
driver, worker lanes are numbered by first appearance in page order.

Determinism: span **ids** are derived from ``(page, phase, occurrence
index)`` — never from timestamps, pids, or lanes — so two runs that do
the same work produce the same id for every span, serial or parallel.
Timestamps are ``time.perf_counter()`` readings; on the platforms we
run (Linux ``CLOCK_MONOTONIC``), they are comparable across the driver
and its forked/spawned workers, which is what lets one run-relative
clock order spans from different processes on a shared gantt.

Recording is off unless ``--profile=timeline`` is given, and the
disabled paths are a singleton attribute check — and by construction
(DESIGN 5i) enabling it never changes an analysis output byte.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from contextlib import contextmanager
from pathlib import Path

TIMELINE_FORMAT = "sqlciv-timeline/1"


class _NullCapture:
    """What :meth:`TimelineRecorder.page` yields while recording is off."""

    __slots__ = ()

    def payload(self) -> None:
        return None


_NULL_CAPTURE = _NullCapture()


class _PageCapture:
    """One page's span list plus its wall-clock bounds."""

    __slots__ = ("page", "t_start", "t_end", "spans")

    def __init__(self, page: str) -> None:
        self.page = page
        self.t_start = 0.0
        self.t_end = 0.0
        self.spans: list[dict] = []

    def payload(self) -> dict:
        """The picklable form shipped in ``PageResult.timeline``."""
        return {
            "page": self.page,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "pid": os.getpid(),
            "spans": self.spans,
        }


class TimelineRecorder:
    """The process-wide phase recorder (:data:`TIMELINE`).

    ``enabled`` gates everything.  Spans are stored flat (dicts with a
    ``parent`` index), nested via an open-span stack; :meth:`page`
    isolates a page's spans exactly like ``TRACE.capture`` isolates a
    page's tree, so worker-recorded pages reassemble identically to
    driver-recorded ones.  Driver-side phases recorded outside any page
    (directory scan, project-state hash) accumulate until
    :meth:`drain_driver_spans`.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._spans: list[dict] = []
        self._stack: list[int] = []
        self._adopted: list[dict] = []

    def configure(self, enabled: bool) -> None:
        self.enabled = enabled
        self._spans = []
        self._stack = []
        self._adopted = []

    @contextmanager
    def phase(self, name: str, **meta):
        """Record one phase-tagged span under the innermost open span."""
        if not self.enabled:
            yield None
            return
        span: dict = {
            "phase": name,
            "parent": self._stack[-1] if self._stack else None,
            "start": time.perf_counter(),
            "end": 0.0,
        }
        if meta:
            span["meta"] = meta
        index = len(self._spans)
        self._spans.append(span)
        self._stack.append(index)
        try:
            yield span
        finally:
            span["end"] = time.perf_counter()
            self._stack.pop()

    def annotate(self, key: str, value) -> None:
        """Set a meta key on the innermost open span, if any."""
        if self.enabled and self._stack:
            span = self._spans[self._stack[-1]]
            span.setdefault("meta", {})[key] = value

    @contextmanager
    def page(self, page: str):
        """Capture one page's spans, isolated from the enclosing state."""
        if not self.enabled:
            yield _NULL_CAPTURE
            return
        saved_spans, saved_stack = self._spans, self._stack
        self._spans, self._stack = [], []
        capture = _PageCapture(page)
        capture.t_start = time.perf_counter()
        try:
            yield capture
        finally:
            capture.t_end = time.perf_counter()
            capture.spans = self._spans
            self._spans, self._stack = saved_spans, saved_stack

    def drain_driver_spans(self) -> list[dict]:
        """Hand over (and clear) the spans recorded outside any page."""
        spans, self._spans = self._spans, []
        self._stack = []
        return spans

    def adopt_capture(self, payload: dict | None) -> None:
        """Register a worker-recorded capture that is not a page (the
        farm's include/parse pre-pass chunks).  Adopted captures render
        in the timeline's ``aux`` section, keeping ``pages`` exactly one
        entry per analyzed page."""
        if self.enabled and payload:
            self._adopted.append(payload)

    def drain_adopted(self) -> list[dict]:
        adopted, self._adopted = self._adopted, []
        return adopted


#: The process-wide recorder; workers enable their own copy in the pool
#: initializer and ship finished page captures home inside PageResult.
TIMELINE = TimelineRecorder()


def append_span(
    payload: dict, phase: str, start: float, end: float, **meta
) -> None:
    """Append a top-level span to a finished page payload (used for the
    ``pickle`` phase, which by definition runs after the capture closed)
    and stretch the page bounds to cover it."""
    span: dict = {"phase": phase, "parent": None, "start": start, "end": end}
    if meta:
        span["meta"] = meta
    payload["spans"].append(span)
    payload["t_end"] = max(payload["t_end"], end)


def span_id(page: str, phase: str, occurrence: int) -> str:
    """Deterministic span id: a function of the page, the phase name,
    and the phase's occurrence ordinal within the page — identical
    across reruns, lanes, and processes."""
    seed = f"{page}|{phase}|{occurrence}".encode("utf-8", errors="replace")
    return hashlib.sha256(seed).hexdigest()[:12]


def assemble(
    page_payloads: list[dict | None],
    driver_spans: list[dict] | None = None,
    attrs: dict | None = None,
    aux_payloads: list[dict] | None = None,
) -> dict:
    """The ``timeline.json`` document for one run.

    ``page_payloads`` are the per-page captures **in page order**
    (``None`` entries — pages analyzed with recording off — are
    skipped).  Lane 0 is the driver process; worker lanes are numbered
    by first appearance in page order, so the lane layout is a pure
    function of the page→worker assignment.

    ``aux_payloads`` are non-page worker captures (the farm's pre-pass
    chunks, see :meth:`TimelineRecorder.adopt_capture`); they render
    under an ``aux`` key so ``pages`` stays one entry per analyzed page.
    """
    driver_spans = driver_spans or []
    pages = [p for p in page_payloads if p]
    aux = [p for p in (aux_payloads or []) if p]
    starts = (
        [p["t_start"] for p in pages + aux]
        + [s["start"] for s in driver_spans]
    )
    ends = [p["t_end"] for p in pages + aux] + [s["end"] for s in driver_spans]
    t0 = min(starts) if starts else 0.0
    wall = (max(ends) - t0) if ends else 0.0

    driver_pid = os.getpid()
    lane_of: dict[int, int] = {driver_pid: 0}
    lanes = [{"lane": 0, "pid": driver_pid, "role": "driver"}]
    for payload in pages + aux:
        pid = payload["pid"]
        if pid not in lane_of:
            lane_of[pid] = len(lanes)
            lanes.append({"lane": len(lanes), "pid": pid, "role": "worker"})

    def render_capture(payload: dict) -> dict:
        counts: dict[str, int] = {}
        spans = []
        for span in payload["spans"]:
            phase = span["phase"]
            occurrence = counts.get(phase, 0)
            counts[phase] = occurrence + 1
            record = {
                "id": span_id(payload["page"], phase, occurrence),
                "phase": phase,
                "parent": span["parent"],
                "start": round(span["start"] - t0, 6),
                "dur": round(span["end"] - span["start"], 6),
            }
            if span.get("meta"):
                record["meta"] = span["meta"]
            spans.append(record)
        return {
            "page": payload["page"],
            "lane": lane_of[payload["pid"]],
            "start": round(payload["t_start"] - t0, 6),
            "dur": round(payload["t_end"] - payload["t_start"], 6),
            "spans": spans,
        }

    out_pages = [render_capture(payload) for payload in pages]
    out_aux = [render_capture(payload) for payload in aux]

    driver_counts: dict[str, int] = {}
    out_driver = []
    for span in driver_spans:
        phase = span["phase"]
        occurrence = driver_counts.get(phase, 0)
        driver_counts[phase] = occurrence + 1
        record = {
            "id": span_id("<driver>", phase, occurrence),
            "phase": phase,
            "parent": span["parent"],
            "start": round(span["start"] - t0, 6),
            "dur": round(span["end"] - span["start"], 6),
        }
        if span.get("meta"):
            record["meta"] = span["meta"]
        out_driver.append(record)

    document = {
        "format": TIMELINE_FORMAT,
        "attrs": attrs or {},
        "wall_seconds": round(wall, 6),
        "lanes": lanes,
        "driver_spans": out_driver,
        "pages": out_pages,
    }
    if out_aux:
        document["aux"] = out_aux
    return document


def write_timeline(path: str | Path, timeline: dict) -> None:
    Path(path).write_text(
        json.dumps(timeline, indent=1) + "\n", encoding="utf-8"
    )


def load_timeline(path: str | Path) -> dict:
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("format") != TIMELINE_FORMAT:
        raise ValueError(
            f"{path} is not a {TIMELINE_FORMAT} document "
            f"(format={data.get('format') if isinstance(data, dict) else None!r})"
        )
    return data
