"""Run telemetry: deterministic span trees and a JSONL event stream.

The analyzer's pipeline — parse → include resolution → phase-1 fixpoint
→ intersections/images → phase-2 checks — runs per page, possibly across
worker processes.  ``--profile`` (:mod:`repro.obs.metrics`) answers "how much,
in total"; this module answers "where, in which page, under which
include" by recording a tree of **spans**:

* a span has a name, attributes (cache hit/miss, grammar sizes, …),
  a wall-clock duration, and children;
* the perf delta (:meth:`repro.obs.metrics.PerfRecorder.diff`) observed while
  the span was open is attached at span exit, so the sum of span deltas
  and the ``--profile`` table agree by construction;
* span **ids are deterministic**: derived from the span's position in
  the tree (parent id, child index, name), never from timestamps or
  memory addresses.  Two runs that do the same work in the same order —
  in particular a serial and a ``--jobs N`` run over the same project —
  produce the same id for every span.

Worker processes record their page subtrees locally (the recorder is
enabled via the pool initializer); each page's finished tree travels
home inside the picklable :class:`~repro.analysis.analyzer.PageResult`
and the driver reassembles the run tree **in page order**, so the tree
shape is independent of worker scheduling.

The JSONL stream (``--trace out.jsonl``) is one object per line:

``{"event": "meta", "format": "sqlciv-trace/1", ...}``
    first line; identifies the stream.
``{"event": "span", "id", "parent", "name", "start", "dur", "attrs",
   "perf"}``
    one per span, in pre-order.  ``start`` is seconds relative to the
    enclosing page span (0 for roots) — offsets are comparable within a
    page, not across pages of a parallel run.  ``perf`` holds the
    counter/timer deltas and gauge high-water marks seen inside the
    span; empty sections are omitted.

Recording is off by default and the disabled paths are no-ops cheap
enough to leave inline in the analysis (a singleton attribute check).
"""

from __future__ import annotations

import hashlib
import json
import time
from contextlib import contextmanager
from pathlib import Path

from repro.obs.metrics import PERF

TRACE_FORMAT = "sqlciv-trace/1"


class Span:
    """One node of the span tree (picklable via :meth:`to_dict`)."""

    __slots__ = ("name", "attrs", "children", "t_start", "t_end", "perf")

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs: dict = dict(attrs or {})
        self.children: list["Span"] = []
        self.t_start = 0.0
        self.t_end = 0.0
        self.perf: dict | None = None

    def set(self, key: str, value) -> None:
        self.attrs[key] = value

    @property
    def duration(self) -> float:
        return max(0.0, self.t_end - self.t_start)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "t_start": self.t_start,
            "t_end": self.t_end,
            "perf": self.perf,
            "children": [child.to_dict() for child in self.children],
        }


class _NullSpan:
    """What :meth:`TraceRecorder.span` yields while tracing is off."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass


_NULL_SPAN = _NullSpan()


class TraceRecorder:
    """The process-wide span recorder (:data:`TRACE`).

    ``enabled`` gates everything; when off, :meth:`span` and
    :meth:`annotate` return immediately.  The recorder keeps only the
    *open* span stack — finished roots are handed to their creator via
    :meth:`capture`, never accumulated, so tracing adds no per-run
    memory beyond the trees the caller chooses to keep.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._stack: list[Span] = []

    def configure(self, enabled: bool) -> None:
        self.enabled = enabled
        self._stack = []

    @contextmanager
    def span(self, name: str, **attrs):
        """Open a child span under the innermost open span."""
        if not self.enabled:
            yield _NULL_SPAN
            return
        span = Span(name, attrs)
        parent = self._stack[-1] if self._stack else None
        self._stack.append(span)
        before = PERF.snapshot()
        span.t_start = time.perf_counter()
        try:
            yield span
        finally:
            span.t_end = time.perf_counter()
            span.perf = _compact_perf(PERF.diff(before))
            self._stack.pop()
            if parent is not None:
                parent.children.append(span)

    @contextmanager
    def capture(self, name: str, **attrs):
        """Open a *root* span, isolated from any enclosing stack.

        Used at page boundaries: the finished span is not attached to a
        parent — the caller serializes it (``span.to_dict()``) into the
        page's result, and the driver reassembles the run tree in page
        order regardless of which process recorded what.
        """
        if not self.enabled:
            yield _NULL_SPAN
            return
        saved = self._stack
        self._stack = []
        span = Span(name, attrs)
        self._stack.append(span)
        before = PERF.snapshot()
        span.t_start = time.perf_counter()
        try:
            yield span
        finally:
            span.t_end = time.perf_counter()
            span.perf = _compact_perf(PERF.diff(before))
            self._stack = saved

    def annotate(self, key: str, value) -> None:
        """Set an attribute on the innermost open span, if any.

        Lets leaf code (cache lookups deep in :mod:`repro.lang.image`)
        report hit/miss without knowing about the span structure above.
        """
        if self.enabled and self._stack:
            self._stack[-1].attrs[key] = value


#: The process-wide recorder; workers enable their own copy in the pool
#: initializer and ship finished page trees home inside PageResult.
TRACE = TraceRecorder()


def _compact_perf(delta: dict) -> dict | None:
    """Drop empty sections; None when nothing at all was recorded."""
    compact = {k: v for k, v in delta.items() if v}
    return compact or None


def span_id(parent_id: str, index: int, name: str) -> str:
    """Deterministic id for the ``index``-th child named ``name``.

    A function of tree position only — identical for every run that does
    the same work in the same order, across processes and machines.
    """
    seed = f"{parent_id}/{index}:{name}".encode("utf-8", errors="replace")
    return hashlib.sha256(seed).hexdigest()[:16]


def _emit(lines: list[str], node: dict, parent_id: str, index: int,
          base: float) -> None:
    sid = span_id(parent_id, index, node["name"])
    record = {
        "event": "span",
        "id": sid,
        "parent": parent_id or None,
        "name": node["name"],
        "start": round(node["t_start"] - base, 6),
        "dur": round(node["t_end"] - node["t_start"], 6),
        "attrs": node["attrs"],
    }
    if node.get("perf"):
        record["perf"] = node["perf"]
    lines.append(json.dumps(record, sort_keys=False))
    for child_index, child in enumerate(node["children"]):
        _emit(lines, child, sid, child_index, base)


def render_run(page_trees: list[dict | None], attrs: dict | None = None) -> str:
    """The JSONL document for one run: meta line + pre-order span lines.

    ``page_trees`` are the per-page root spans (``Span.to_dict`` form)
    **in page order**; ``None`` entries (a page analyzed with tracing
    off) are skipped.  Each page tree hangs under a synthetic ``run``
    root whose id anchors the deterministic id scheme.
    """
    trees = [tree for tree in page_trees if tree]
    lines = [
        json.dumps(
            {"event": "meta", "format": TRACE_FORMAT, "attrs": attrs or {},
             "spans_clock": "seconds relative to the enclosing page span"},
            sort_keys=False,
        )
    ]
    root_id = span_id("", 0, "run")
    lines.append(
        json.dumps(
            {"event": "span", "id": root_id, "parent": None, "name": "run",
             "start": 0.0, "dur": round(sum(
                 t["t_end"] - t["t_start"] for t in trees), 6),
             "attrs": {"pages": len(trees)}},
            sort_keys=False,
        )
    )
    for index, tree in enumerate(trees):
        _emit(lines, tree, root_id, index, tree["t_start"])
    return "\n".join(lines) + "\n"


def write_run(path: str | Path, page_trees: list[dict | None],
              attrs: dict | None = None) -> None:
    Path(path).write_text(render_run(page_trees, attrs), encoding="utf-8")


def tree_shape(jsonl_text: str) -> list[tuple]:
    """The scheduling-invariant shape of a trace: (id, parent, name) per
    span line, in stream order.  Serial and parallel runs over the same
    project must agree on this (the equivalence the tests pin down)."""
    shape = []
    for line in jsonl_text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        if record.get("event") == "span":
            shape.append((record["id"], record["parent"], record["name"]))
    return shape
