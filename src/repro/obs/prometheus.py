"""Prometheus text-format exposition of a registry snapshot.

This is the daemon's scrape surface (``sqlciv serve --metrics-addr``),
and the metric **names it emits are a stable contract** (DESIGN 5i):

* every family is prefixed ``sqlciv_``; dots in registry names become
  underscores;
* counters get the ``_total`` suffix (``pages.analyzed`` →
  ``sqlciv_pages_analyzed_total``), except the per-op request counters
  ``server.requests.<op>``, which fold into one family
  ``sqlciv_server_requests_total{op="<op>"}``;
* timers are cumulative seconds, exposed as counters with a
  ``_seconds_total`` suffix (``phase2.checks`` →
  ``sqlciv_phase2_checks_seconds_total``);
* gauges are exposed as gauges; registry gauges are high-water marks,
  current-value gauges (resident projects/pages, cache entry counts)
  are supplied by the caller via ``extra_gauges``;
* histograms become native Prometheus histograms
  (``_bucket{le="…"}``/``_sum``/``_count``, with the ``+Inf`` bucket);
* derived hit-rate gauges ``sqlciv_cache_hit_ratio{cache="<label>"}``
  are emitted for every cache in
  :data:`repro.obs.metrics.CACHE_RATE_ROWS` that saw traffic.

Only the text exposition format (version 0.0.4) is produced — it needs
no client library, which keeps the daemon dependency-free.
"""

from __future__ import annotations

import re

from repro.obs.metrics import cache_rates

# colons are reserved for recording rules, so they are sanitized too
_NAME_OK = re.compile(r"[^a-zA-Z0-9_]")
_REQUEST_COUNTER_PREFIX = "server.requests."


def metric_name(name: str) -> str:
    """``sqlciv_``-prefixed, sanitized family name for a registry name."""
    return "sqlciv_" + _NAME_OK.sub("_", name.replace(".", "_"))


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _fmt(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(
    snapshot: dict, extra_gauges: dict[str, float] | None = None
) -> str:
    """The text-format exposition for one registry snapshot.

    ``extra_gauges`` carries current-value gauges (the registry only
    keeps high-water marks); keys are registry-style dotted names.
    """
    lines: list[str] = []

    counters = snapshot.get("counters", {})
    request_ops = {
        name[len(_REQUEST_COUNTER_PREFIX):]: value
        for name, value in counters.items()
        if name.startswith(_REQUEST_COUNTER_PREFIX)
    }
    if request_ops:
        family = "sqlciv_server_requests_total"
        lines.append(f"# HELP {family} Daemon requests handled, by op.")
        lines.append(f"# TYPE {family} counter")
        for op in sorted(request_ops):
            lines.append(
                f'{family}{{op="{_escape_label(op)}"}} '
                f"{_fmt(request_ops[op])}"
            )
    for name in sorted(counters):
        if name.startswith(_REQUEST_COUNTER_PREFIX):
            continue
        family = metric_name(name) + "_total"
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_fmt(counters[name])}")

    for name in sorted(snapshot.get("timers", {})):
        family = metric_name(name) + "_seconds_total"
        lines.append(f"# TYPE {family} counter")
        lines.append(f"{family} {_fmt(snapshot['timers'][name])}")

    gauges = snapshot.get("gauges", {})
    for name in sorted(gauges):
        family = metric_name(name)
        lines.append(f"# HELP {family} High-water mark.")
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_fmt(gauges[name])}")
    for name in sorted(extra_gauges or {}):
        family = metric_name(name)
        lines.append(f"# TYPE {family} gauge")
        lines.append(f"{family} {_fmt(extra_gauges[name])}")

    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        family = metric_name(name)
        lines.append(f"# TYPE {family} histogram")
        cumulative = 0
        for bound, count in zip(hist["bounds"], hist["counts"]):
            cumulative += count
            lines.append(
                f'{family}_bucket{{le="{_fmt(float(bound))}"}} {cumulative}'
            )
        lines.append(
            f'{family}_bucket{{le="+Inf"}} {_fmt(hist["count"])}'
        )
        lines.append(f"{family}_sum {_fmt(hist['sum'])}")
        lines.append(f"{family}_count {_fmt(hist['count'])}")

    rates = cache_rates(counters)
    if rates:
        family = "sqlciv_cache_hit_ratio"
        lines.append(
            f"# HELP {family} Hit ratio per cache since process start."
        )
        lines.append(f"# TYPE {family} gauge")
        for label, _hits, _misses, rate, _extras in rates:
            cache = _escape_label(label.replace(" ", "_"))
            lines.append(f'{family}{{cache="{cache}"}} {round(rate, 6)}')

    return "\n".join(lines) + "\n"
