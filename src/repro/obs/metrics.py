"""The typed metrics registry: counters, timers, gauges, histograms.

One process-wide :class:`MetricsRegistry` (:data:`PERF`) collects

* **counters** — monotone event counts (cache hits/misses per cache,
  fixpoint iterations, pages analyzed, …),
* **timers** — cumulative wall-clock seconds per named phase
  (``phase1.string_analysis``, ``phase2.checks``, ``fingerprint`` …),
* **gauges** — high-water marks (peak memo sizes, largest subgrammar),
* **histograms** — fixed-bucket distributions (phase durations, memo
  lookup latencies, grammar sizes, serialized page bytes).  Bucket
  bounds are fixed per metric name at first observation (picked by
  :func:`buckets_for` unless given explicitly), so two processes that
  observe the same metric always agree on the bucket layout and their
  snapshots merge by elementwise addition.

Everything in a snapshot is a plain ``int``/``float``/``list`` in a
flat dict, so it is trivially picklable: parallel analysis workers ship
their deltas back to the driver, which folds them into its own registry
**in page order** (counters/timers/histograms add, gauges take the
max).  Addition is commutative, so the merged totals are independent of
worker scheduling — the page-order convention additionally makes the
merge *sequence* deterministic, which keeps ``--json --profile``
documents reproducible field-for-field given identical per-page deltas.

Recording is cheap enough to leave on unconditionally — a dict update
(plus a bisect, for histograms) per event — and is surfaced only when
asked for (CLI ``--profile``, the daemon's metrics surface, the
benchmark harness).
"""

from __future__ import annotations

import time
from bisect import bisect_left
from contextlib import contextmanager

# -- fixed bucket layouts -----------------------------------------------------

#: latency buckets (seconds): sub-millisecond memo lookups up to
#: multi-second whole-phase walls
SECONDS_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: size buckets (counts): grammar productions, cache entries, …
SIZE_BUCKETS = (1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144)

#: payload buckets (bytes): pickled page results, disk-cache entries
BYTES_BUCKETS = (
    1024, 8192, 65536, 262144, 1048576, 4194304, 16777216, 67108864,
)


def buckets_for(name: str) -> tuple[float, ...]:
    """The default bucket bounds for a histogram name.

    The convention is part of the metric-name contract (DESIGN 5i):
    ``*seconds*`` metrics get latency buckets, ``*bytes*`` metrics get
    payload buckets, everything else gets size buckets.
    """
    if "seconds" in name:
        return SECONDS_BUCKETS
    if "bytes" in name:
        return BYTES_BUCKETS
    return SIZE_BUCKETS


class MetricsRegistry:
    """A flat bag of counters, timers, gauges, and histograms."""

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.timers: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        #: name → {"bounds": tuple, "counts": [len(bounds)+1 ints]
        #: (last bucket = overflow), "sum": float, "count": int}
        self.histograms: dict[str, dict] = {}

    # -- recording ---------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount

    def add_time(self, name: str, seconds: float) -> None:
        self.timers[name] = self.timers.get(name, 0.0) + seconds

    def gauge(self, name: str, value: float) -> None:
        """Record a high-water mark (keeps the max ever seen)."""
        if value > self.gauges.get(name, float("-inf")):
            self.gauges[name] = value

    def observe(
        self, name: str, value: float, buckets: tuple[float, ...] | None = None
    ) -> None:
        """Record one observation into the fixed-bucket histogram ``name``.

        ``buckets`` fixes the bounds on the histogram's first
        observation; afterwards (and by default) the registered bounds
        are used, so every process observing ``name`` buckets alike.
        """
        hist = self.histograms.get(name)
        if hist is None:
            bounds = tuple(buckets) if buckets else buckets_for(name)
            hist = {
                "bounds": bounds,
                "counts": [0] * (len(bounds) + 1),
                "sum": 0.0,
                "count": 0,
            }
            self.histograms[name] = hist
        hist["counts"][bisect_left(hist["bounds"], value)] += 1
        hist["sum"] += value
        hist["count"] += 1

    @contextmanager
    def timer(self, name: str):
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - started)

    @contextmanager
    def latency(self, name: str):
        """Like :meth:`timer`, but records into the histogram ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - started)

    # -- snapshots ---------------------------------------------------------

    def reset(self) -> None:
        self.counters.clear()
        self.timers.clear()
        self.gauges.clear()
        self.histograms.clear()

    def snapshot(self) -> dict:
        """A picklable copy: ``{"counters": …, "timers": …, "gauges": …}``
        plus a ``"histograms"`` section when any were observed (kept
        conditional so histogram-free snapshots match the historical
        three-section shape byte-for-byte)."""
        snap = {
            "counters": dict(self.counters),
            "timers": dict(self.timers),
            "gauges": dict(self.gauges),
        }
        if self.histograms:
            snap["histograms"] = {
                name: {
                    "bounds": list(hist["bounds"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
                for name, hist in self.histograms.items()
            }
        return snap

    def diff(self, before: dict) -> dict:
        """What happened since ``before`` (an earlier :meth:`snapshot`).

        Counters, timers, and histograms subtract; gauges keep the
        current high-water mark (a max over a superset of events is
        still an upper bound).
        """
        now = self.snapshot()
        out = {
            "counters": _sub(now["counters"], before.get("counters", {})),
            "timers": _sub(now["timers"], before.get("timers", {})),
            "gauges": dict(now["gauges"]),
        }
        hist_delta = _sub_histograms(
            now.get("histograms", {}), before.get("histograms", {})
        )
        if hist_delta:
            out["histograms"] = hist_delta
        return out

    def merge(self, delta: dict) -> None:
        """Fold a worker's snapshot/diff into this registry."""
        for name, value in delta.get("counters", {}).items():
            self.incr(name, value)
        for name, value in delta.get("timers", {}).items():
            self.add_time(name, value)
        for name, value in delta.get("gauges", {}).items():
            self.gauge(name, value)
        for name, other in delta.get("histograms", {}).items():
            hist = self.histograms.get(name)
            if hist is None:
                self.histograms[name] = {
                    "bounds": tuple(other["bounds"]),
                    "counts": list(other["counts"]),
                    "sum": other["sum"],
                    "count": other["count"],
                }
                continue
            if tuple(other["bounds"]) != hist["bounds"]:
                # bounds are fixed per name, so this only happens when
                # two processes disagree about the layout — fold the
                # observations through the sum/count to stay monotone
                hist["sum"] += other["sum"]
                hist["count"] += other["count"]
                continue
            for index, count in enumerate(other["counts"]):
                hist["counts"][index] += count
            hist["sum"] += other["sum"]
            hist["count"] += other["count"]


#: Backwards-compatible name — everything that used to say
#: ``PerfRecorder`` keeps working against the extended registry.
PerfRecorder = MetricsRegistry


def _sub(now: dict, before: dict) -> dict:
    out = {}
    for name, value in now.items():
        delta = value - before.get(name, 0)
        if delta:
            out[name] = delta
    return out


def _sub_histograms(now: dict, before: dict) -> dict:
    out = {}
    for name, hist in now.items():
        prior = before.get(name)
        if prior is None:
            if hist["count"]:
                out[name] = hist
            continue
        count = hist["count"] - prior["count"]
        if not count:
            continue
        out[name] = {
            "bounds": list(hist["bounds"]),
            "counts": [
                value - old
                for value, old in zip(hist["counts"], prior["counts"])
            ],
            "sum": hist["sum"] - prior["sum"],
            "count": count,
        }
    return out


# -- derived views ------------------------------------------------------------

#: the counter pairs the cache-effectiveness table derives rates from:
#: (display label, hits counter, misses counter, extra counters shown)
CACHE_RATE_ROWS = (
    ("prefilter", "prefilter.hits", "prefilter.misses", ()),
    ("image cache", "image.cache.hits", "image.cache.misses",
     ("image.cache.replays",)),
    ("verdict memo", "policy.verdict_cache.hits",
     "policy.verdict_cache.misses", ()),
    ("parse memory", "parse.memory_hits", "parse.files", ()),
    ("disk ast", "disk.ast.hits", "disk.ast.misses", ()),
    ("disk page", "disk.page.hits", "disk.page.misses", ()),
    ("server page memo", "server.pages.replayed",
     "server.pages.reanalyzed", ()),
    # farm shared-memo sections: a shared hit ALSO counts as a local
    # miss in the rows above (counter-invariance contract), so these
    # rows measure only how often the cross-worker store saved work
    ("farm shared verdict", "farm.verdict.shared_hits",
     "farm.verdict.shared_misses", ("farm.verdict.published",)),
    ("farm shared image", "farm.image.shared_hits",
     "farm.image.shared_misses", ("farm.image.published",)),
    ("farm shared ast", "farm.ast.shared_hits",
     "farm.ast.shared_misses", ("farm.ast.published",)),
)


def cache_rates(counters: dict) -> list[tuple[str, int, int, float, dict]]:
    """Hit-rate rows derivable from a snapshot's counters: a list of
    ``(label, hits, misses, rate, extras)`` for every cache that saw any
    traffic.  ``parse memory`` counts hits against parses performed, so
    its "misses" column is the parse count."""
    rows = []
    for label, hits_key, misses_key, extra_keys in CACHE_RATE_ROWS:
        hits = counters.get(hits_key, 0)
        misses = counters.get(misses_key, 0)
        total = hits + misses
        if not total:
            continue
        extras = {
            key: counters[key] for key in extra_keys if counters.get(key)
        }
        rows.append((label, hits, misses, hits / total, extras))
    return rows


def histogram_quantile(hist: dict, q: float) -> float | None:
    """An upper-bound estimate of the ``q``-quantile from bucket counts
    (the bucket bound the quantile observation fell at or below)."""
    total = hist["count"]
    if not total:
        return None
    rank = q * total
    seen = 0
    bounds = hist["bounds"]
    for index, count in enumerate(hist["counts"]):
        seen += count
        if seen >= rank and count:
            if index < len(bounds):
                return float(bounds[index])
            return float(hist["sum"] / total)  # overflow bucket: mean bound
    return float(bounds[-1]) if bounds else None


def render_table(snapshot: dict) -> str:
    """The ``--profile`` table: timers, histograms, cache effectiveness,
    then counters and gauges."""
    lines = ["== perf profile =="]
    timers = snapshot.get("timers", {})
    if timers:
        lines.append("phase timings:")
        width = max(len(n) for n in timers)
        for name in sorted(timers):
            lines.append(f"  {name:<{width}}  {timers[name]:9.3f}s")
    histograms = snapshot.get("histograms", {})
    if histograms:
        lines.append("histograms (count / mean / p50 / p99):")
        width = max(len(n) for n in histograms)
        for name in sorted(histograms):
            hist = histograms[name]
            count = hist["count"]
            mean = hist["sum"] / count if count else 0.0
            p50 = histogram_quantile(hist, 0.50)
            p99 = histogram_quantile(hist, 0.99)
            lines.append(
                f"  {name:<{width}}  {count:>7}  {mean:10.6g}"
                f"  {p50 if p50 is not None else 0:10.6g}"
                f"  {p99 if p99 is not None else 0:10.6g}"
            )
    rates = cache_rates(snapshot.get("counters", {}))
    if rates:
        lines.append("cache effectiveness:")
        width = max(len(label) for label, *_ in rates)
        for label, hits, misses, rate, extras in rates:
            extra = "".join(
                f"  {key.rsplit('.', 1)[-1]}={value}"
                for key, value in sorted(extras.items())
            )
            lines.append(
                f"  {label:<{width}}  {rate * 100:5.1f}% hit"
                f"  ({hits}/{hits + misses}){extra}"
            )
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:>9}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges (high-water marks):")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            value = gauges[name]
            shown = f"{value:g}" if isinstance(value, float) else str(value)
            lines.append(f"  {name:<{width}}  {shown:>9}")
    if len(lines) == 1:
        lines.append("(no events recorded)")
    return "\n".join(lines)


#: The process-wide registry.  Parallel workers each get their own copy
#: (a fresh process), take a :meth:`MetricsRegistry.snapshot` before a
#: page and ship ``PERF.diff(before)`` back with the page's result.
PERF = MetricsRegistry()
