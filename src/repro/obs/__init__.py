"""Unified observability layer: metrics, traces, timelines, exposition.

This package subsumed the older top-level ``repro.perf`` and
``repro.trace`` modules (now removed — import from here directly) and
adds the instruments the ROADMAP's scalability work needs:

* :mod:`repro.obs.metrics` — the typed metrics registry behind the
  process-wide :data:`~repro.obs.metrics.PERF` singleton: counters,
  timers, gauges, and **fixed-bucket histograms** (phase durations,
  grammar sizes, memo lookup latencies).  Snapshots are plain dicts, so
  they pickle across the ``ProcessPoolExecutor`` boundary and merge
  deterministically in page order.
* :mod:`repro.obs.trace` — deterministic span trees (``--trace``).
* :mod:`repro.obs.timeline` — the per-worker timeline profiler
  (``--profile=timeline``): phase-tagged spans with worker-lane
  attribution, written as ``timeline.json``.
* :mod:`repro.obs.stats` — ``sqlciv stats timeline.json``: a text gantt
  plus the bottleneck report that names the dominant phase and the
  serial fraction of a parallel run.
* :mod:`repro.obs.prometheus` — Prometheus text-format exposition of a
  metrics snapshot (the daemon's ``--metrics-addr`` endpoint).

Everything here is observation only: with every instrument enabled, the
analysis outputs (``--json``, ``--sarif``, exit codes) are byte-for-byte
identical to an uninstrumented run (DESIGN 5i).
"""

from .metrics import PERF, MetricsRegistry, PerfRecorder, render_table
from .timeline import TIMELINE, TIMELINE_FORMAT

__all__ = [
    "PERF",
    "MetricsRegistry",
    "PerfRecorder",
    "render_table",
    "TIMELINE",
    "TIMELINE_FORMAT",
]
