"""Transducer/semantic models for PHP's library functions.

The paper's implementation "added specifications for 243 PHP functions"
(§4).  This module is that catalog, organized by modeling strategy:

* **transducers** — sanitizer-relevant string functions modeled exactly
  as FSTs (``addslashes``, ``str_replace``, class-replace
  ``preg_replace`` forms, case mapping, ``stripslashes``, …);
* **regular abstractions** — functions whose *output language* is a known
  regular set (``md5`` → 32 hex chars, ``intval`` → an integer,
  ``urlencode`` → percent-encoded alphabet, …); taint is preserved where
  the output still depends on the input;
* **structure models** — ``sprintf``, ``implode``, ``explode``
  (Figure 8), ``substr``, ``str_repeat``, ``strrev``;
* **predicates** — condition languages for ``preg_match``/``ereg``/
  ``is_numeric``/``ctype_*`` used by branch refinement (§3.1.2);
* **widening fallbacks** — everything string-expanding or unmodellable
  (``urldecode``, array ``strtr``) soundly widens to a charset closure
  or Σ*, keeping taint.

Handlers receive the :class:`~repro.analysis.absdom.GrammarBuilder`,
the abstract argument values, and the raw AST argument nodes (so models
can exploit literal arguments, which is where all the precision comes
from — a ``str_replace`` with a dynamic pattern cannot be an FST).
"""

from __future__ import annotations

from typing import Callable

from repro.lang.charset import ALNUM, CharSet, DIGITS
from repro.lang.fsa import NFA
from repro.lang.fst import COPY, FST
from repro.lang.grammar import Lit
from repro.lang.regex import (
    Pattern,
    RegexError,
    full_match_language,
    parse_php_regex,
    parse_regex,
    search_language,
)
from repro.analysis.absdom import GrammarBuilder
from repro.analysis.values import ArrVal, StrVal, Value

from . import ast

Handler = Callable[[GrammarBuilder, list[Value | None], list[ast.Expr]], Value | None]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def literal_str(node: ast.Expr | None) -> str | None:
    """The literal string value of an AST argument, if statically known."""
    if isinstance(node, ast.Literal) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Literal) and isinstance(node.value, (int, float)):
        return _php_number_str(node.value)
    return None


def _php_number_str(value: int | float) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(value)


def _arg(values: list[Value | None], index: int) -> Value | None:
    return values[index] if index < len(values) else None


def _str_arg(builder: GrammarBuilder, values: list[Value | None], index: int) -> StrVal:
    return builder.to_str(_arg(values, index))


def _keep_taint(builder: GrammarBuilder, source: StrVal, result: StrVal) -> StrVal:
    for label in builder.labels_of(source):
        builder.grammar.add_label(result.nt, label)
    return result


def regular_result(builder: GrammarBuilder, pattern: str, hint: str) -> StrVal:
    return builder.from_nfa(full_match_language(parse_regex(pattern)), hint)


# The "all substrings" transducer: skip a prefix, copy a window, skip the
# suffix.  Exact for substr() with unknown bounds.
def _substring_fst() -> FST:
    fst = FST()
    pre, mid, post = fst.new_state(), fst.new_state(), fst.new_state()
    anything = CharSet.any_char()
    fst.add_transition(pre, anything, ("",), pre)
    fst.add_transition(pre, anything, (COPY,), mid)
    fst.add_transition(mid, anything, (COPY,), mid)
    fst.add_transition(mid, anything, ("",), post)
    fst.add_transition(post, anything, ("",), post)
    return fst


def _between_delims_fst(delim: str) -> FST:
    """Figure 8: the pieces ``explode(delim, subject)`` returns, for a
    single-character delimiter (the common case)."""
    fst = FST()
    start, skip, mid, done = (fst.new_state() for _ in range(4))
    delim_cs = CharSet.of(delim)
    other = delim_cs.complement()
    anything = CharSet.any_char()
    # still before our piece: swallow anything, a delimiter may start it
    fst.add_transition(start, anything, ("",), skip)
    fst.add_transition(start, other, (COPY,), mid)
    # the FIRST piece can end right away at a delimiter (empty piece) …
    fst.add_transition(start, delim_cs, ("",), done)
    # … and a delimiter at position 0 can also START our piece
    fst.add_transition(start, delim_cs, ("",), mid)
    fst.add_transition(skip, anything, ("",), skip)
    fst.add_transition(skip, delim_cs, ("",), mid)
    # inside our piece: copy non-delimiters; a delimiter ends it
    fst.add_transition(mid, other, (COPY,), mid)
    fst.add_transition(mid, delim_cs, ("",), done)
    fst.add_transition(done, anything, ("",), done)
    fst.accepts = {start, mid, done}
    return fst


def _reverse_value(builder: GrammarBuilder, value: StrVal) -> StrVal:
    """Exact language reversal: reverse every rhs and every literal."""
    scope = builder.grammar.subgrammar(value.nt)
    mapping = {nt: builder.fresh(f"rev.{nt.name}") for nt in scope.productions}
    for nt, rules in scope.productions.items():
        for rhs in rules:
            reversed_rhs = []
            for symbol in reversed(rhs):
                if isinstance(symbol, Lit):
                    reversed_rhs.append(Lit(symbol.text[::-1]))
                elif symbol in mapping:
                    reversed_rhs.append(mapping[symbol])
                else:
                    reversed_rhs.append(symbol)
            builder.grammar.add(mapping[nt], tuple(reversed_rhs))
        for label in scope.labels.get(nt, ()):
            builder.grammar.add_label(mapping[nt], label)
    return StrVal(mapping[value.nt])


# ---------------------------------------------------------------------------
# character sets for the escaping family
# ---------------------------------------------------------------------------

ADDSLASHES_CHARS = CharSet.of("'\"\\\0")
MYSQL_ESCAPE_CHARS = CharSet.of("'\"\\\0\n\r\x1a")
REGEX_SPECIALS = CharSet.of(".\\+*?[^]$(){}=!<>|:-#/")


def _stripslashes_fst() -> FST:
    fst = FST()
    normal, escaped = fst.new_state(), fst.new_state()
    backslash = CharSet.of("\\")
    fst.add_transition(normal, backslash, ("",), escaped)
    fst.add_transition(normal, backslash.complement(), (COPY,), normal)
    fst.add_transition(escaped, CharSet.any_char(), (COPY,), normal)
    return fst


def _htmlspecialchars_fst(quote_style: str) -> FST:
    mapping = [
        (CharSet.of("&"), ("&amp;",)),
        (CharSet.of("<"), ("&lt;",)),
        (CharSet.of(">"), ("&gt;",)),
    ]
    if quote_style in ("ENT_COMPAT", "ENT_QUOTES"):
        mapping.append((CharSet.of('"'), ("&quot;",)))
    if quote_style == "ENT_QUOTES":
        mapping.append((CharSet.of("'"), ("&#039;",)))
    return FST.char_map(mapping)


# ---------------------------------------------------------------------------
# transducer-family handlers
# ---------------------------------------------------------------------------


def _h_addslashes(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return builder.image(subject, FST.escape_chars(ADDSLASHES_CHARS), "addslashes")


def _h_stripslashes(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return builder.image(subject, _stripslashes_fst(), "stripslashes")


def _h_mysql_escape(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return builder.image(subject, FST.escape_chars(MYSQL_ESCAPE_CHARS), "sqlescape")


def _h_mysqli_escape(builder, values, nodes):
    # mysqli_real_escape_string($link, $string): subject is argument 1
    subject = _str_arg(builder, values, 1 if len(values) > 1 else 0)
    return builder.image(subject, FST.escape_chars(MYSQL_ESCAPE_CHARS), "sqlescape")


def _h_htmlspecialchars(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    style = "ENT_COMPAT"
    if len(nodes) > 1 and isinstance(nodes[1], ast.ConstFetch):
        style = nodes[1].name
    return builder.image(subject, _htmlspecialchars_fst(style), "htmlspecial")


def _h_strtolower(builder, values, nodes):
    return builder.image(_str_arg(builder, values, 0), FST.lowercase(), "lower")


def _h_strtoupper(builder, values, nodes):
    return builder.image(_str_arg(builder, values, 0), FST.uppercase(), "upper")


def _h_preg_quote(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return builder.image(subject, FST.escape_chars(REGEX_SPECIALS), "pregquote")


def _h_nl2br(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    fst = FST.char_map([(CharSet.of("\n"), ("<br />\n",))])
    return builder.image(subject, fst, "nl2br")


def _h_trim(builder, values, nodes):
    # Sound over-approximation: output ⊆ input-language ∪ edge-trimmed
    # strings; we return input ∪ substring-language restricted to losing
    # only whitespace — simplest sound model is the identity union the
    # substring language; whitespace precision rarely matters for SQLCIVs.
    subject = _str_arg(builder, values, 0)
    trimmed = builder.image(subject, _substring_fst(), "trim")
    return builder.join([subject, trimmed], "trim∪")


def _h_str_replace(builder, values, nodes):
    search_node = nodes[0] if nodes else None
    replace_node = nodes[1] if len(nodes) > 1 else None
    subject = _str_arg(builder, values, 2)

    pairs = _replace_pairs(search_node, replace_node)
    if pairs is None:
        # dynamic pattern/replacement: widen, keep taint of all inputs
        result = builder.widen(subject, "replace▽")
        for index in (0, 1):
            arg = _arg(values, index)
            if isinstance(arg, StrVal):
                _keep_taint(builder, arg, result)
        return result
    result = subject
    for search, replacement in pairs:
        if not search:
            continue
        result = builder.image(result, FST.replace_string(search, replacement), "replace")
    return result


def _replace_pairs(
    search_node: ast.Expr | None, replace_node: ast.Expr | None
) -> list[tuple[str, str]] | None:
    """Literal (search, replacement) pairs for str_replace, handling the
    array forms (the paper had to expand those by hand; we support them)."""

    def literal_list(node):
        if isinstance(node, ast.ArrayLit):
            items = []
            for key, value in node.items:
                text = literal_str(value)
                if text is None:
                    return None
                items.append(text)
            return items
        text = literal_str(node)
        return None if text is None else [text]

    searches = literal_list(search_node)
    if searches is None:
        return None
    replacements = literal_list(replace_node)
    if replacements is None:
        return None
    if isinstance(replace_node, ast.ArrayLit):
        padded = replacements + [""] * (len(searches) - len(replacements))
    else:
        padded = replacements * len(searches)
    return list(zip(searches, padded))


def _h_preg_replace(builder, values, nodes, php_delimiters: bool = True):
    pattern_text = literal_str(nodes[0] if nodes else None)
    replacement = literal_str(nodes[1] if len(nodes) > 1 else None)
    subject = _str_arg(builder, values, 2)
    fst = None
    if pattern_text is not None and replacement is not None and "\\" not in replacement and "$" not in replacement:
        fst = _regex_replace_fst(pattern_text, replacement, php_delimiters)
    if fst is None:
        result = builder.widen(subject, "pregrep▽")
        replacement_value = _arg(values, 1)
        if isinstance(replacement_value, StrVal):
            _keep_taint(builder, replacement_value, result)
        return result
    return builder.image(subject, fst, "pregrep")


def _h_ereg_replace(builder, values, nodes):
    return _h_preg_replace(builder, values, nodes, php_delimiters=False)


def _regex_replace_fst(
    pattern_text: str, replacement: str, php_delimiters: bool
) -> FST | None:
    """An exact FST for the ``preg_replace`` forms web code actually uses:
    a single character class (``/[^0-9]/``), a repeated class
    (``/[^a-z]+/``), or a fixed string.  Anything else → None (widen)."""
    try:
        pattern = (
            parse_php_regex(pattern_text)
            if php_delimiters
            else parse_regex(pattern_text)
        )
    except RegexError:
        return None
    root = pattern.root
    from repro.lang import regex as rx

    def fold(cs: CharSet) -> CharSet:
        return rx._case_fold(cs) if pattern.ignore_case else cs

    if isinstance(root, rx.Chars):
        return FST.char_map([(fold(root.charset), (replacement,))])
    if (
        isinstance(root, rx.Repeat)
        and isinstance(root.node, rx.Chars)
        and root.low >= 1
        and root.high is None
    ):
        return FST.collapse_class(fold(root.node.charset), replacement)
    if isinstance(root, rx.Repeat) and isinstance(root.node, rx.Chars) and root.low == 0:
        # '/x*/' replaces empty matches too — not FST-expressible; widen
        return None
    if isinstance(root, rx.Literal) and root.text:
        if pattern.ignore_case:
            return None
        return FST.replace_string(root.text, replacement)
    if isinstance(root, rx.Seq):
        text_parts = []
        for part in root.parts:
            if isinstance(part, rx.Literal):
                text_parts.append(part.text)
            else:
                return None
        joined = "".join(text_parts)
        if joined and not pattern.ignore_case:
            return FST.replace_string(joined, replacement)
    return None


def _h_strtr(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    from_text = literal_str(nodes[1] if len(nodes) > 1 else None)
    to_text = literal_str(nodes[2] if len(nodes) > 2 else None)
    if from_text is not None and to_text is not None:
        mapping = [
            (CharSet.of(f), (t,))
            for f, t in zip(from_text, to_text)
        ]
        return builder.image(subject, FST.char_map(mapping), "strtr")
    result = builder.widen(subject, "strtr▽")
    return result


def _h_strrev(builder, values, nodes):
    return _reverse_value(builder, _str_arg(builder, values, 0))


def _h_substr(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return builder.image(subject, _substring_fst(), "substr")


def _h_str_repeat(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    star = builder.fresh("repeat")
    builder.grammar.add(star, ())
    builder.grammar.add(star, (subject.nt, star))
    return StrVal(star)


def _h_str_pad(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    pad_text = literal_str(nodes[2] if len(nodes) > 2 else None) or " "
    pad = builder.literal(pad_text)
    pad_star = _h_str_repeat(builder, [pad], [])
    return builder.concat(builder.concat(StrVal(pad_star.nt), subject), pad_star)


def _h_sprintf(builder, values, nodes):
    fmt = literal_str(nodes[0] if nodes else None)
    if fmt is None:
        result = builder.widen(_str_arg(builder, values, 0), "sprintf▽")
        for value in values[1:]:
            if isinstance(value, StrVal):
                _keep_taint(builder, value, result)
        return result
    parts: list[StrVal] = []
    arg_index = 1
    i = 0
    chunk = ""
    while i < len(fmt):
        char = fmt[i]
        if char == "%" and i + 1 < len(fmt):
            directive = fmt[i + 1]
            if directive == "%":
                chunk += "%"
                i += 2
                continue
            # flush literal chunk
            if chunk:
                parts.append(builder.literal(chunk))
                chunk = ""
            # skip width/precision/flags
            j = i + 1
            while j < len(fmt) and fmt[j] in "0123456789.+-' ":
                j += 1
            directive = fmt[j] if j < len(fmt) else "s"
            if directive in "dufFeEgGbcoxX":
                # numeric conversions sanitize: output is a number
                parts.append(regular_result(builder, r"-?[0-9]+(\.[0-9]+)?", "fmtnum"))
            else:  # %s and friends: the argument flows through
                parts.append(_str_arg(builder, values, arg_index))
            arg_index += 1
            i = j + 1
            continue
        chunk += char
        i += 1
    if chunk:
        parts.append(builder.literal(chunk))
    return builder.concat_all(parts)


def _h_implode(builder, values, nodes):
    glue_value, array_value = _arg(values, 0), _arg(values, 1)
    if isinstance(glue_value, ArrVal) or (
        array_value is None and isinstance(glue_value, ArrVal)
    ):
        glue_value, array_value = array_value, glue_value
    if not isinstance(array_value, ArrVal):
        if isinstance(glue_value, ArrVal):  # implode($array) form
            array_value, glue_value = glue_value, None
        else:
            return builder.any_string(hint="implode?")
    glue = builder.to_str(glue_value) if glue_value is not None else builder.literal("")
    element_values = [builder.to_str(v) for v in array_value.all_values()]
    element = (
        builder.join(element_values, "elem") if element_values else builder.literal("")
    )
    result = builder.fresh("implode")
    builder.grammar.add(result, ())
    builder.grammar.add(result, (element.nt,))
    builder.grammar.add(result, (element.nt, glue.nt, result))
    return StrVal(result)


def _h_explode(builder, values, nodes):
    delim = literal_str(nodes[0] if nodes else None)
    subject = _str_arg(builder, values, 1)
    if delim is not None and len(delim) == 1:
        piece = builder.image(subject, _between_delims_fst(delim), "explode")
    else:
        # multi-character or dynamic delimiter: any substring (sound)
        piece = builder.image(subject, _substring_fst(), "explode~")
    return ArrVal(default=piece)


def _h_str_split(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return ArrVal(default=builder.image(subject, _substring_fst(), "strsplit"))


# ---------------------------------------------------------------------------
# regular-output abstractions
# ---------------------------------------------------------------------------


def _regular_handler(pattern: str, hint: str, taint_arg: int | None = None) -> Handler:
    def handler(builder, values, nodes):
        result = regular_result(builder, pattern, hint)
        if taint_arg is not None:
            arg = _arg(values, taint_arg)
            if isinstance(arg, StrVal):
                _keep_taint(builder, arg, result)
        return result

    return handler


def _widen_handler(taint_args: tuple[int, ...] = (0,)) -> Handler:
    def handler(builder, values, nodes):
        subjects = [
            builder.to_str(_arg(values, index))
            for index in taint_args
            if _arg(values, index) is not None
        ]
        if not subjects:
            return builder.any_string(hint="▽")
        joined = builder.join(subjects, "args")
        return builder.widen(joined, "▽")

    # the audit pass distinguishes "modeled by widening" from exact models
    handler.widens = True
    return handler


def _identity_handler(index: int = 0) -> Handler:
    def handler(builder, values, nodes):
        return _str_arg(builder, values, index)

    return handler


def _h_intval(builder, values, nodes):
    return regular_result(builder, r"-?[0-9]+", "intval")


def _h_number_format(builder, values, nodes):
    return regular_result(builder, r"-?[0-9][0-9,]*(\.[0-9]+)?", "numfmt")


def _h_date(builder, values, nodes):
    fmt = literal_str(nodes[0] if nodes else None)
    if fmt is not None and "'" not in fmt:
        return regular_result(builder, r"[A-Za-z0-9 :,./+-]*", "date")
    return regular_result(builder, r"[^']*", "date~")


def _h_urlencode(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    result = regular_result(builder, r"[A-Za-z0-9%._+*-]*", "urlenc")
    return _keep_taint(builder, subject, result)


def _h_base64_encode(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    result = regular_result(builder, r"[A-Za-z0-9+/]*={0,2}", "b64")
    return _keep_taint(builder, subject, result)


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

NUMERIC = r"-?[0-9]+"
HEX32 = r"[0-9a-f]{32}"
HEX40 = r"[0-9a-f]{40}"

BUILTINS: dict[str, Handler] = {
    # sanitizers / escaping (exact transducers)
    "addslashes": _h_addslashes,
    "stripslashes": _h_stripslashes,
    "mysql_real_escape_string": _h_mysql_escape,
    "mysql_escape_string": _h_mysql_escape,
    "mysqli_real_escape_string": _h_mysqli_escape,
    "pg_escape_string": _h_mysql_escape,
    "sqlite_escape_string": _h_mysql_escape,
    "htmlspecialchars": _h_htmlspecialchars,
    "htmlentities": _h_htmlspecialchars,
    "preg_quote": _h_preg_quote,
    "quotemeta": _h_preg_quote,
    # replacement family
    "str_replace": _h_str_replace,
    "str_ireplace": _h_str_replace,
    "preg_replace": _h_preg_replace,
    "ereg_replace": _h_ereg_replace,
    "eregi_replace": _h_ereg_replace,
    "strtr": _h_strtr,
    "nl2br": _h_nl2br,
    # case / shape
    "strtolower": _h_strtolower,
    "strtoupper": _h_strtoupper,
    "mb_strtolower": _h_strtolower,
    "mb_strtoupper": _h_strtoupper,
    "lcfirst": _widen_handler(),
    "ucfirst": _widen_handler(),
    "ucwords": _widen_handler(),
    "trim": _h_trim,
    "ltrim": _h_trim,
    "rtrim": _h_trim,
    "chop": _h_trim,
    "strrev": _h_strrev,
    "substr": _h_substr,
    "mb_substr": _h_substr,
    "str_repeat": _h_str_repeat,
    "str_pad": _h_str_pad,
    "wordwrap": _widen_handler(),
    "chunk_split": _widen_handler(),
    "strip_tags": _widen_handler(),
    "stripcslashes": _widen_handler(),
    "html_entity_decode": _widen_handler(),
    "htmlspecialchars_decode": _widen_handler(),
    # formatting / structure
    "sprintf": _h_sprintf,
    "vsprintf": _h_sprintf,
    "implode": _h_implode,
    "join": _h_implode,
    "explode": _h_explode,
    "str_split": _h_str_split,
    "preg_split": _h_explode,
    "split": _h_explode,
    # numeric conversions (sanitizing)
    "intval": _h_intval,
    "floatval": _regular_handler(r"-?[0-9]+(\.[0-9]+)?", "floatval"),
    "doubleval": _regular_handler(r"-?[0-9]+(\.[0-9]+)?", "floatval"),
    "abs": _regular_handler(r"[0-9]+(\.[0-9]+)?", "abs"),
    "round": _regular_handler(r"-?[0-9]+(\.[0-9]+)?", "round"),
    "floor": _regular_handler(NUMERIC, "floor"),
    "ceil": _regular_handler(NUMERIC, "ceil"),
    "count": _regular_handler(NUMERIC, "count"),
    "sizeof": _regular_handler(NUMERIC, "sizeof"),
    "strlen": _regular_handler(NUMERIC, "strlen"),
    "mb_strlen": _regular_handler(NUMERIC, "strlen"),
    "strpos": _regular_handler(NUMERIC, "strpos"),
    "strrpos": _regular_handler(NUMERIC, "strrpos"),
    "time": _regular_handler(NUMERIC, "time"),
    "mktime": _regular_handler(NUMERIC, "mktime"),
    "rand": _regular_handler(NUMERIC, "rand"),
    "mt_rand": _regular_handler(NUMERIC, "mt_rand"),
    "number_format": _h_number_format,
    "ord": _regular_handler(NUMERIC, "ord"),
    "hexdec": _regular_handler(NUMERIC, "hexdec"),
    "octdec": _regular_handler(NUMERIC, "octdec"),
    "bindec": _regular_handler(NUMERIC, "bindec"),
    # digest / encoding (safe or restricted alphabets)
    "md5": _regular_handler(HEX32, "md5"),
    "sha1": _regular_handler(HEX40, "sha1"),
    "crc32": _regular_handler(NUMERIC, "crc32"),
    "uniqid": _regular_handler(r"[0-9a-f.]+", "uniqid"),
    "dechex": _regular_handler(r"[0-9a-f]+", "dechex"),
    "decoct": _regular_handler(r"[0-7]+", "decoct"),
    "decbin": _regular_handler(r"[01]+", "decbin"),
    "bin2hex": _regular_handler(r"[0-9a-f]*", "bin2hex", taint_arg=0),
    "urlencode": _h_urlencode,
    "rawurlencode": _h_urlencode,
    "base64_encode": _h_base64_encode,
    "chr": _regular_handler(r".", "chr"),
    "date": _h_date,
    "strftime": _h_date,
    "gmdate": _h_date,
    # expanding / unmodellable (widen, keep taint)
    "urldecode": _widen_handler(),
    "rawurldecode": _widen_handler(),
    "base64_decode": _widen_handler(),
    "utf8_encode": _widen_handler(),
    "utf8_decode": _widen_handler(),
    "convert_uuencode": _widen_handler(),
    "serialize": _widen_handler(),
    "unserialize": _widen_handler(),
    "gzcompress": _widen_handler(),
    "gzuncompress": _widen_handler(),
    "strval": _identity_handler(),
    # misc string
    "basename": _h_substr,
    "dirname": _h_substr,
    "pathinfo": _h_substr,
    "strstr": _h_substr,
    "stristr": _h_substr,
    "strrchr": _h_substr,
    "strchr": _h_substr,
    "get_magic_quotes_gpc": _regular_handler(r"[01]", "magicquotes"),
    "gettype": _regular_handler(
        r"(boolean|integer|double|string|array|object|NULL)", "gettype"
    ),
    "php_uname": _regular_handler(r"[A-Za-z0-9 ._-]*", "uname"),
    "phpversion": _regular_handler(r"[0-9.]+", "phpversion"),
}

#: Names of builtins whose return value is an *array* of pieces.
ARRAY_RESULTS = frozenset({"explode", "str_split", "preg_split", "split"})

#: Statement-ish builtins that return nothing interesting and have no
#: string effect (registered so the analysis does not widen on them).
NO_EFFECT = frozenset(
    """
    header error_reporting ini_set ini_get set_time_limit session_start
    session_destroy session_write_close setcookie ob_start ob_end_flush
    ob_end_clean flush usleep sleep error_log trigger_error define defined
    srand mt_srand register_shutdown_function function_exists class_exists
    method_exists extension_loaded connection_aborted ignore_user_abort
    unset print printf echo var_dump print_r assert
    """.split()
)


#: Builtins whose *only* model is the sound widening fallback — the call
#: succeeds but the result is a charset-closure over-approximation.  The
#: soundness audit reports these as ``widened`` (precision caveats, not
#: soundness holes).  Handlers that widen only on dynamic arguments
#: (``str_replace`` with a non-literal pattern, …) are caught at run time
#: through :meth:`GrammarBuilder.widen`'s audit hook instead.
WIDENING_BUILTINS = frozenset(
    name for name, handler in BUILTINS.items() if getattr(handler, "widens", False)
)


def model_call(
    name: str,
    builder: GrammarBuilder,
    values: list[Value | None],
    nodes: list[ast.Expr],
    audit=None,
) -> Value | None:
    """Apply the model for builtin ``name``; None if no model exists.

    When an :class:`~repro.analysis.audit.AuditTrail` is supplied, every
    call that falls through to the widening fallback records the builtin's
    *name* (not just the fact of widening), so the audit can report
    "N calls to widened builtins: …" per page.
    """
    handler = BUILTINS.get(name)
    if handler is not None:
        if audit is not None and getattr(handler, "widens", False):
            audit.record_builtin_widening(name)
        return handler(builder, values, nodes)
    if name in NO_EFFECT:
        return builder.literal("")
    return None


# ---------------------------------------------------------------------------
# predicates (branch refinement languages)
# ---------------------------------------------------------------------------


#: boolean predicates the branch refinement (§3.1.2) understands; their
#: *return value* needs no string model, so a call is never "unknown"
PREDICATE_FUNCTIONS = frozenset(
    """
    preg_match preg_match_all ereg eregi is_numeric ctype_digit
    ctype_alnum ctype_alpha ctype_xdigit is_int is_integer in_array
    """.split()
)


def predicate_language(call: ast.Call) -> tuple[ast.Expr, Pattern | NFA] | None:
    """For a boolean builtin call, return ``(constrained_arg, language)``
    where ``language`` describes the strings for which the call is true.

    ``preg_match``-family results carry :class:`Pattern` (so the caller
    can build the complement for the else-branch); the ``ctype`` family
    returns anchored patterns too.
    """
    name = call.name
    args = call.args
    if name in ("preg_match", "preg_match_all") and len(args) >= 2:
        pattern_text = literal_str(args[0])
        if pattern_text is None:
            return None
        try:
            return args[1], parse_php_regex(pattern_text)
        except RegexError:
            return None
    if name in ("ereg", "eregi") and len(args) >= 2:
        pattern_text = literal_str(args[0])
        if pattern_text is None:
            return None
        try:
            return args[1], parse_regex(pattern_text, ignore_case=(name == "eregi"))
        except RegexError:
            return None
    simple = {
        "is_numeric": r"^[+-]?([0-9]+(\.[0-9]*)?|\.[0-9]+)([eE][+-]?[0-9]+)?$",
        "ctype_digit": r"^[0-9]+$",
        "ctype_alnum": r"^[0-9A-Za-z]+$",
        "ctype_alpha": r"^[A-Za-z]+$",
        "ctype_xdigit": r"^[0-9A-Fa-f]+$",
        "is_int": r"^-?[0-9]+$",
        "is_integer": r"^-?[0-9]+$",
    }
    if name in simple and args:
        return args[0], parse_regex(simple[name])
    if name == "in_array" and len(args) >= 2 and isinstance(args[1], ast.ArrayLit):
        literals = []
        for _, value in args[1].items:
            text = literal_str(value)
            if text is None:
                return None
            literals.append(text)
        language = NFA.nothing()
        for text in literals:
            language = language.union(NFA.from_string(text))
        return args[0], language
    return None
