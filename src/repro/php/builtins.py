"""Transducer/semantic models for PHP's library functions.

The paper's implementation "added specifications for 243 PHP functions"
(§4).  This module is that catalog, organized by modeling strategy:

* **transducers** — sanitizer-relevant string functions modeled exactly
  as FSTs (``addslashes``, ``str_replace``, class-replace
  ``preg_replace`` forms, case mapping, ``stripslashes``, …);
* **regular abstractions** — functions whose *output language* is a known
  regular set (``md5`` → 32 hex chars, ``intval`` → an integer,
  ``urlencode`` → percent-encoded alphabet, …); taint is preserved where
  the output still depends on the input;
* **structure models** — ``sprintf``, ``implode``, ``explode``
  (Figure 8), ``substr``, ``str_repeat``, ``strrev``;
* **predicates** — condition languages for ``preg_match``/``ereg``/
  ``is_numeric``/``ctype_*`` used by branch refinement (§3.1.2);
* **widening fallbacks** — everything string-expanding or unmodellable
  (``urldecode``, array ``strtr``) soundly widens to a charset closure
  or Σ*, keeping taint.

Handlers receive the :class:`~repro.analysis.absdom.GrammarBuilder`,
the abstract argument values, and the raw AST argument nodes (so models
can exploit literal arguments, which is where all the precision comes
from — a ``str_replace`` with a dynamic pattern cannot be an FST).
"""

from __future__ import annotations

import base64
import binascii
import hashlib
import html as _html
import math
import re
import time as _time
import zlib
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.lang.charset import CharSet
from repro.lang.fsa import NFA
from repro.lang.fst import COPY, FST
from repro.lang.grammar import Lit
from repro.lang.regex import (
    Pattern,
    RegexError,
    full_match_language,
    parse_php_regex,
    parse_regex,
    search_language,
)
from repro.analysis.absdom import GrammarBuilder
from repro.analysis.values import ArrVal, StrVal, Value

from . import ast

Handler = Callable[[GrammarBuilder, list[Value | None], list[ast.Expr]], Value | None]


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def literal_str(node: ast.Expr | None) -> str | None:
    """The literal string value of an AST argument, if statically known."""
    if isinstance(node, ast.Literal) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.Literal) and isinstance(node.value, (int, float)):
        return _php_number_str(node.value)
    return None


def _php_number_str(value: int | float) -> str:
    if isinstance(value, int):
        return str(value)
    return repr(value)


def _arg(values: list[Value | None], index: int) -> Value | None:
    return values[index] if index < len(values) else None


def _str_arg(builder: GrammarBuilder, values: list[Value | None], index: int) -> StrVal:
    return builder.to_str(_arg(values, index))


def _keep_taint(builder: GrammarBuilder, source: StrVal, result: StrVal) -> StrVal:
    for label in builder.labels_of(source):
        builder.grammar.add_label(result.nt, label)
    return result


def regular_result(builder: GrammarBuilder, pattern: str, hint: str) -> StrVal:
    return builder.from_nfa(full_match_language(parse_regex(pattern)), hint)


def _dynamic_fallback(
    builder: GrammarBuilder,
    values: list[Value | None],
    taint_args: tuple[int, ...],
    hint: str,
) -> StrVal:
    """Σ* carrying the taint of the given arguments — the only sound
    abstraction when a call can emit characters outside its subject's
    alphabet (dynamic replacements, decoders, case extension, …)."""
    operands = [
        builder.to_str(_arg(values, index))
        for index in taint_args
        if _arg(values, index) is not None
    ]
    result = builder.any_string(hint=hint)
    return builder.taint_through(result, operands, hint)


# The "all substrings" transducer: skip a prefix, copy a window, skip the
# suffix.  Exact for substr() with unknown bounds.
@lru_cache(maxsize=64)
def _substring_fst() -> FST:
    fst = FST()
    pre, mid, post = fst.new_state(), fst.new_state(), fst.new_state()
    anything = CharSet.any_char()
    fst.add_transition(pre, anything, ("",), pre)
    fst.add_transition(pre, anything, (COPY,), mid)
    fst.add_transition(mid, anything, (COPY,), mid)
    fst.add_transition(mid, anything, ("",), post)
    fst.add_transition(post, anything, ("",), post)
    return fst


@lru_cache(maxsize=64)
def _between_delims_fst(delim: str) -> FST:
    """Figure 8: the pieces ``explode(delim, subject)`` returns, for a
    single-character delimiter (the common case)."""
    fst = FST()
    start, skip, mid, done = (fst.new_state() for _ in range(4))
    delim_cs = CharSet.of(delim)
    other = delim_cs.complement()
    anything = CharSet.any_char()
    # still before our piece: swallow anything, a delimiter may start it
    fst.add_transition(start, anything, ("",), skip)
    fst.add_transition(start, other, (COPY,), mid)
    # the FIRST piece can end right away at a delimiter (empty piece) …
    fst.add_transition(start, delim_cs, ("",), done)
    # … and a delimiter at position 0 can also START our piece
    fst.add_transition(start, delim_cs, ("",), mid)
    fst.add_transition(skip, anything, ("",), skip)
    fst.add_transition(skip, delim_cs, ("",), mid)
    # inside our piece: copy non-delimiters; a delimiter ends it
    fst.add_transition(mid, other, (COPY,), mid)
    fst.add_transition(mid, delim_cs, ("",), done)
    fst.add_transition(done, anything, ("",), done)
    fst.accepts = {start, mid, done}
    return fst


def _reverse_value(builder: GrammarBuilder, value: StrVal) -> StrVal:
    """Exact language reversal: reverse every rhs and every literal."""
    scope = builder.grammar.subgrammar(value.nt)
    mapping = {nt: builder.fresh(f"rev.{nt.name}") for nt in scope.productions}
    for nt, rules in scope.productions.items():
        for rhs in rules:
            reversed_rhs = []
            for symbol in reversed(rhs):
                if isinstance(symbol, Lit):
                    reversed_rhs.append(Lit(symbol.text[::-1]))
                elif symbol in mapping:
                    reversed_rhs.append(mapping[symbol])
                else:
                    reversed_rhs.append(symbol)
            builder.grammar.add(mapping[nt], tuple(reversed_rhs))
        for label in scope.labels.get(nt, ()):
            builder.grammar.add_label(mapping[nt], label)
    return StrVal(mapping[value.nt])


# ---------------------------------------------------------------------------
# character sets for the escaping family
# ---------------------------------------------------------------------------

ADDSLASHES_CHARS = CharSet.of("'\"\\\0")
MYSQL_ESCAPE_CHARS = CharSet.of("'\"\\\0\n\r\x1a")
REGEX_SPECIALS = CharSet.of(".\\+*?[^]$(){}=!<>|:-#/")
QUOTEMETA_CHARS = CharSet.of(".\\+*?[^]$()")


@lru_cache(maxsize=64)
def _addslashes_fst() -> FST:
    """PHP ``addslashes``: NUL becomes the two characters ``\\0`` (a
    backslash and a digit zero, *not* a backslash-prefixed NUL — the
    differential oracle caught the ``escape_chars`` model getting this
    wrong); quote and backslash get a backslash prefix."""
    return FST.char_map(
        [
            (CharSet.of("\0"), ("\\0",)),
            (ADDSLASHES_CHARS, ("\\", COPY)),
        ]
    )


@lru_cache(maxsize=64)
def _mysql_escape_fst() -> FST:
    """``mysql_real_escape_string``: like addslashes, but the control
    characters rewrite to their *letter* escapes (``\\n``, ``\\r``,
    ``\\Z``) instead of a backslash-prefixed control byte."""
    return FST.char_map(
        [
            (CharSet.of("\0"), ("\\0",)),
            (CharSet.of("\n"), ("\\n",)),
            (CharSet.of("\r"), ("\\r",)),
            (CharSet.of("\x1a"), ("\\Z",)),
            (MYSQL_ESCAPE_CHARS, ("\\", COPY)),
        ]
    )


@lru_cache(maxsize=64)
def _pg_escape_fst() -> FST:
    """``pg_escape_string`` doubles quotes and backslashes (SQL-standard
    quoting), unlike the MySQL family's backslash-escaping."""
    return FST.char_map(
        [
            (CharSet.of("'"), ("''",)),
            (CharSet.of("\\"), ("\\\\",)),
        ]
    )


@lru_cache(maxsize=64)
def _sqlite_escape_fst() -> FST:
    return FST.char_map([(CharSet.of("'"), ("''",))])


@lru_cache(maxsize=64)
def _escapeshellarg_fst() -> FST:
    """The *body* rewrite of PHP ``escapeshellarg``: every embedded
    single quote becomes ``'\\''`` (close, escaped quote, reopen); the
    surrounding quotes are added by the handler as trusted literals."""
    return FST.char_map([(CharSet.of("'"), ("'\\''",))])


@lru_cache(maxsize=64)
def _stripslashes_fst() -> FST:
    fst = FST()
    normal, escaped = fst.new_state(), fst.new_state()
    backslash = CharSet.of("\\")
    zero = CharSet.of("0")
    fst.add_transition(normal, backslash, ("",), escaped)
    fst.add_transition(normal, backslash.complement(), (COPY,), normal)
    # ``\0`` decodes to NUL (the inverse of addslashes); every other
    # escaped character is emitted verbatim
    fst.add_transition(escaped, zero, ("\0",), normal)
    fst.add_transition(escaped, zero.complement(), (COPY,), normal)
    return fst


@lru_cache(maxsize=64)
def _htmlspecialchars_fst(quote_style: str) -> FST:
    mapping = [
        (CharSet.of("&"), ("&amp;",)),
        (CharSet.of("<"), ("&lt;",)),
        (CharSet.of(">"), ("&gt;",)),
    ]
    if quote_style in ("ENT_COMPAT", "ENT_QUOTES"):
        mapping.append((CharSet.of('"'), ("&quot;",)))
    if quote_style == "ENT_QUOTES":
        mapping.append((CharSet.of("'"), ("&#039;",)))
    return FST.char_map(mapping)


# ---------------------------------------------------------------------------
# transducer-family handlers
# ---------------------------------------------------------------------------


def _h_addslashes(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return builder.image(subject, _addslashes_fst(), "addslashes")


def _h_stripslashes(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return builder.image(subject, _stripslashes_fst(), "stripslashes")


def _h_mysql_escape(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return builder.image(subject, _mysql_escape_fst(), "sqlescape")


def _h_mysqli_escape(builder, values, nodes):
    # mysqli_real_escape_string($link, $string): subject is argument 1
    subject = _str_arg(builder, values, 1 if len(values) > 1 else 0)
    return builder.image(subject, _mysql_escape_fst(), "sqlescape")


def _h_pg_escape(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return builder.image(subject, _pg_escape_fst(), "pgescape")


def _h_sqlite_escape(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return builder.image(subject, _sqlite_escape_fst(), "sqlescape")


def _h_escapeshellarg(builder, values, nodes):
    """``escapeshellarg($s)`` = ``"'" . body . "'"`` with quotes in the
    body escaped.  The result nonterminal is re-labeled with the
    subject's taint so the *maximal* labeled nonterminal the shell
    policy checks covers the whole quoted argument — that is what makes
    the sanitized form pass the shell-breakout automaton.  (Literal
    nonterminals are memoized/shared, so labels go on the fresh outer
    concat, never on the quote literals.)"""
    subject = _str_arg(builder, values, 0)
    body = builder.image(subject, _escapeshellarg_fst(), "shellarg")
    quote = builder.literal("'")
    result = builder.concat(builder.concat(quote, body), quote)
    for label in builder.labels_of(body):
        builder.grammar.add_label(result.nt, label)
    return result


def _h_htmlspecialchars(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    style = "ENT_COMPAT"
    if len(nodes) > 1 and isinstance(nodes[1], ast.ConstFetch):
        style = nodes[1].name
    return builder.image(subject, _htmlspecialchars_fst(style), "htmlspecial")


def _h_strtolower(builder, values, nodes):
    return builder.image(_str_arg(builder, values, 0), FST.lowercase(), "lower")


def _h_strtoupper(builder, values, nodes):
    return builder.image(_str_arg(builder, values, 0), FST.uppercase(), "upper")


def _h_preg_quote(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return builder.image(subject, FST.escape_chars(REGEX_SPECIALS), "pregquote")


def _h_quotemeta(builder, values, nodes):
    # quotemeta escapes a strictly smaller set than preg_quote; the model
    # is an exact image, so using preg_quote's charset would *change* the
    # output language, not over-approximate it
    subject = _str_arg(builder, values, 0)
    return builder.image(subject, FST.escape_chars(QUOTEMETA_CHARS), "quotemeta")


@lru_cache(maxsize=64)
def _nl2br_fst() -> FST:
    """``nl2br`` breaks on ``\\r\\n`` / ``\\n\\r`` *pairs* (one ``<br />``
    per pair, inserted before it) as well as on lone ``\\n`` / ``\\r`` —
    a per-character map would split a CRLF into two breaks."""
    fst = FST()
    normal, seen_cr, seen_lf = fst.new_state(), fst.new_state(), fst.new_state()
    cr, lf = CharSet.of("\r"), CharSet.of("\n")
    other = CharSet.of("\r\n").complement()
    fst.add_transition(normal, other, (COPY,), normal)
    fst.add_transition(normal, cr, ("",), seen_cr)
    fst.add_transition(normal, lf, ("",), seen_lf)
    fst.add_transition(seen_cr, lf, ("<br />\r\n",), normal)
    fst.add_transition(seen_cr, cr, ("<br />\r",), seen_cr)
    fst.add_transition(seen_cr, other, ("<br />\r", COPY), normal)
    fst.add_transition(seen_lf, cr, ("<br />\n\r",), normal)
    fst.add_transition(seen_lf, lf, ("<br />\n",), seen_lf)
    fst.add_transition(seen_lf, other, ("<br />\n", COPY), normal)
    fst.final_output[seen_cr] = "<br />\r"
    fst.final_output[seen_lf] = "<br />\n"
    return fst


def _h_nl2br(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return builder.image(subject, _nl2br_fst(), "nl2br")


def _h_trim(builder, values, nodes):
    # Sound over-approximation: output ⊆ input-language ∪ edge-trimmed
    # strings; we return input ∪ substring-language restricted to losing
    # only whitespace — simplest sound model is the identity union the
    # substring language; whitespace precision rarely matters for SQLCIVs.
    subject = _str_arg(builder, values, 0)
    trimmed = builder.image(subject, _substring_fst(), "trim")
    return builder.join([subject, trimmed], "trim∪")


def _h_str_replace(builder, values, nodes):
    search_node = nodes[0] if nodes else None
    replace_node = nodes[1] if len(nodes) > 1 else None
    subject = _str_arg(builder, values, 2)

    pairs = _replace_pairs(search_node, replace_node)
    if pairs is None:
        # Dynamic pattern/replacement: the replacement's characters are
        # not bounded by the subject's alphabet, so a charset-closure
        # widening of the subject would *miss* strings the call can
        # really produce — only Σ* (with every input's taint) is sound.
        return _dynamic_fallback(builder, values, (0, 1, 2), "replace▽")
    result = subject
    for search, replacement in pairs:
        if not search:
            continue
        result = builder.image(result, FST.replace_string(search, replacement), "replace")
    return result


def _replace_pairs(
    search_node: ast.Expr | None, replace_node: ast.Expr | None
) -> list[tuple[str, str]] | None:
    """Literal (search, replacement) pairs for str_replace, handling the
    array forms (the paper had to expand those by hand; we support them)."""

    def literal_list(node):
        if isinstance(node, ast.ArrayLit):
            items = []
            for key, value in node.items:
                text = literal_str(value)
                if text is None:
                    return None
                items.append(text)
            return items
        text = literal_str(node)
        return None if text is None else [text]

    searches = literal_list(search_node)
    if searches is None:
        return None
    replacements = literal_list(replace_node)
    if replacements is None:
        return None
    if isinstance(replace_node, ast.ArrayLit):
        padded = replacements + [""] * (len(searches) - len(replacements))
    else:
        padded = replacements * len(searches)
    return list(zip(searches, padded))


def _h_preg_replace(builder, values, nodes, php_delimiters: bool = True):
    pattern_text = literal_str(nodes[0] if nodes else None)
    replacement = literal_str(nodes[1] if len(nodes) > 1 else None)
    subject = _str_arg(builder, values, 2)
    fst = None
    if pattern_text is not None and replacement is not None and "\\" not in replacement and "$" not in replacement:
        fst = _regex_replace_fst(pattern_text, replacement, php_delimiters)
    if fst is None:
        # sound Σ* fallback — see _h_str_replace's dynamic branch
        return _dynamic_fallback(builder, values, (0, 1, 2), "pregrep▽")
    return builder.image(subject, fst, "pregrep")


def _h_ereg_replace(builder, values, nodes):
    return _h_preg_replace(builder, values, nodes, php_delimiters=False)


@lru_cache(maxsize=64)
def _regex_replace_fst(
    pattern_text: str, replacement: str, php_delimiters: bool
) -> FST | None:
    """An exact FST for the ``preg_replace`` forms web code actually uses:
    a single character class (``/[^0-9]/``), a repeated class
    (``/[^a-z]+/``), or a fixed string.  Anything else → None (widen)."""
    try:
        pattern = (
            parse_php_regex(pattern_text)
            if php_delimiters
            else parse_regex(pattern_text)
        )
    except RegexError:
        return None
    root = pattern.root
    from repro.lang import regex as rx

    def fold(cs: CharSet) -> CharSet:
        return rx._case_fold(cs) if pattern.ignore_case else cs

    if isinstance(root, rx.Chars):
        return FST.char_map([(fold(root.charset), (replacement,))])
    if (
        isinstance(root, rx.Repeat)
        and isinstance(root.node, rx.Chars)
        and root.low >= 1
        and root.high is None
    ):
        return FST.collapse_class(fold(root.node.charset), replacement)
    if isinstance(root, rx.Repeat) and isinstance(root.node, rx.Chars) and root.low == 0:
        # '/x*/' replaces empty matches too — not FST-expressible; widen
        return None
    if isinstance(root, rx.Literal) and root.text:
        if pattern.ignore_case:
            return None
        return FST.replace_string(root.text, replacement)
    if isinstance(root, rx.Seq):
        text_parts = []
        for part in root.parts:
            if isinstance(part, rx.Literal):
                text_parts.append(part.text)
            else:
                return None
        joined = "".join(text_parts)
        if joined and not pattern.ignore_case:
            return FST.replace_string(joined, replacement)
    return None


def _h_strtr(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    from_text = literal_str(nodes[1] if len(nodes) > 1 else None)
    to_text = literal_str(nodes[2] if len(nodes) > 2 else None)
    if from_text is not None and to_text is not None:
        # PHP builds its translation table left to right, so for a
        # duplicated "from" character the *last* pair wins
        table: dict[str, str] = {}
        for f, t in zip(from_text, to_text):
            table[f] = t
        mapping = [(CharSet.of(f), (t,)) for f, t in table.items()]
        return builder.image(subject, FST.char_map(mapping), "strtr")
    # array form / dynamic tables: replacement strings come from the
    # tables, not the subject — Σ* is the only sound fallback
    return _dynamic_fallback(builder, values, (0, 1, 2), "strtr▽")


def _h_strrev(builder, values, nodes):
    return _reverse_value(builder, _str_arg(builder, values, 0))


def _h_substr(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return builder.image(subject, _substring_fst(), "substr")


def _h_str_repeat(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    star = builder.fresh("repeat")
    builder.grammar.add(star, ())
    builder.grammar.add(star, (subject.nt, star))
    return StrVal(star)


def _h_str_pad(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    if len(nodes) > 2:
        pad_text = literal_str(nodes[2])
        if pad_text is None:
            # dynamic pad string: its characters are unknown
            return _dynamic_fallback(builder, values, (0, 2), "strpad▽")
    else:
        pad_text = " "
    if not pad_text:
        return subject
    # A star over the pad *alphabet*, not the pad string: PHP truncates
    # the final copy of a multi-character pad, so "abab a" is reachable
    # from pad "ab" — the pad-string star would miss the partial copy.
    pad_star = builder.charset_star(CharSet.of(pad_text), "pad")
    return builder.concat(builder.concat(pad_star, subject), pad_star)


#: Output language of each numeric sprintf conversion.  Per-directive
#: precision matters: %x emits hex digits and %o octal digits, which the
#: old catch-all decimal language excluded — a genuine unsoundness the
#: differential oracle flagged (``sprintf("%x", 255)`` → ``"ff"``).
_SPRINTF_LANGUAGES = {
    "d": r"[+-]?[0-9]+",
    "u": r"[+-]?[0-9]+",
    "f": r"[+-]?[0-9]+(\.[0-9]+)?",
    "F": r"[+-]?[0-9]+(\.[0-9]+)?",
    "e": r"[+-]?[0-9]+(\.[0-9]+)?[eE][+-]?[0-9]+",
    "E": r"[+-]?[0-9]+(\.[0-9]+)?[eE][+-]?[0-9]+",
    "g": r"[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?",
    "G": r"[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?",
    "x": r"[0-9a-f]+",
    "X": r"[0-9A-F]+",
    "o": r"[0-7]+",
    "b": r"[01]+",
}


def parse_sprintf_spec(fmt: str, i: int):
    """Parse ``%[argnum$][flags][width][.precision]directive`` starting at
    the ``%`` in ``fmt[i]``; returns ``(spec, directive, next_index)``
    with ``directive=None`` when the ``%`` starts no valid conversion.

    Shared with the concrete ``sprintf`` in the differential oracle so
    model and semantics can never disagree on what a directive *is*.
    """
    spec = {"flags": "", "width": 0, "precision": None, "pad": None, "argnum": None}
    j = i + 1
    k = j
    while k < len(fmt) and fmt[k].isdigit():
        k += 1
    if k > j and k < len(fmt) and fmt[k] == "$":
        spec["argnum"] = int(fmt[j:k])
        j = k + 1
    while j < len(fmt):
        char = fmt[j]
        if char in "-+ 0":
            spec["flags"] += char
            j += 1
        elif char == "'" and j + 1 < len(fmt):
            spec["pad"] = fmt[j + 1]
            j += 2
        else:
            break
    k = j
    while k < len(fmt) and fmt[k].isdigit():
        k += 1
    if k > j:
        spec["width"] = int(fmt[j:k])
        j = k
    if j < len(fmt) and fmt[j] == ".":
        k = j + 1
        while k < len(fmt) and fmt[k].isdigit():
            k += 1
        spec["precision"] = int(fmt[j + 1 : k] or 0)
        j = k
    if j < len(fmt) and fmt[j].isalpha():
        return spec, fmt[j], j + 1
    return spec, None, i + 1


def _sprintf_model(builder, values, nodes, fetch_arg):
    fmt = literal_str(nodes[0] if nodes else None)
    if fmt is None:
        # dynamic format string: any argument can appear anywhere
        return _dynamic_fallback(builder, values, tuple(range(len(values))), "sprintf▽")
    parts: list[StrVal] = []
    arg_index = 0
    i = 0
    chunk = ""
    while i < len(fmt):
        char = fmt[i]
        if char == "%" and i + 1 < len(fmt):
            if fmt[i + 1] == "%":
                chunk += "%"
                i += 2
                continue
            spec, directive, next_i = parse_sprintf_spec(fmt, i)
            if directive is None:
                chunk += char
                i += 1
                continue
            if chunk:
                parts.append(builder.literal(chunk))
                chunk = ""
            index = spec["argnum"] - 1 if spec["argnum"] else arg_index
            if directive in _SPRINTF_LANGUAGES:
                value = regular_result(builder, _SPRINTF_LANGUAGES[directive], "fmtnum")
            elif directive == "c":
                value = builder.from_symbols([CharSet.any_char()], "fmtchar")
            else:  # %s (and unknown conversions, conservatively): flows
                value = fetch_arg(index)
                if spec["precision"] is not None:
                    value = builder.image(value, _substring_fst(), "fmtprec")
            if spec["width"]:
                # padding may appear on either side (and is a *star*, so
                # the unpadded string stays in the language)
                pad_star = builder.charset_star(
                    CharSet.of(" 0" + (spec["pad"] or " ")), "fmtpad"
                )
                value = builder.concat(builder.concat(pad_star, value), pad_star)
            parts.append(value)
            if not spec["argnum"]:
                arg_index += 1
            i = next_i
            continue
        chunk += char
        i += 1
    if chunk:
        parts.append(builder.literal(chunk))
    return builder.concat_all(parts)


def _h_sprintf(builder, values, nodes):
    def fetch_arg(index):
        return _str_arg(builder, values, index + 1)

    return _sprintf_model(builder, values, nodes, fetch_arg)


def _h_vsprintf(builder, values, nodes):
    array_value = _arg(values, 1)

    def fetch_arg(index):
        if isinstance(array_value, ArrVal):
            return builder.to_str(array_value.get(str(index)))
        return builder.to_str(array_value)

    return _sprintf_model(builder, values, nodes, fetch_arg)


def _h_implode(builder, values, nodes):
    glue_value, array_value = _arg(values, 0), _arg(values, 1)
    if isinstance(glue_value, ArrVal) or (
        array_value is None and isinstance(glue_value, ArrVal)
    ):
        glue_value, array_value = array_value, glue_value
    if not isinstance(array_value, ArrVal):
        if isinstance(glue_value, ArrVal):  # implode($array) form
            array_value, glue_value = glue_value, None
        else:
            return builder.any_string(hint="implode?")
    glue = builder.to_str(glue_value) if glue_value is not None else builder.literal("")
    element_values = [builder.to_str(v) for v in array_value.all_values()]
    element = (
        builder.join(element_values, "elem") if element_values else builder.literal("")
    )
    result = builder.fresh("implode")
    builder.grammar.add(result, ())
    builder.grammar.add(result, (element.nt,))
    builder.grammar.add(result, (element.nt, glue.nt, result))
    return StrVal(result)


def _h_explode(builder, values, nodes):
    delim = literal_str(nodes[0] if nodes else None)
    subject = _str_arg(builder, values, 1)
    if delim is not None and len(delim) == 1:
        piece = builder.image(subject, _between_delims_fst(delim), "explode")
    else:
        # multi-character or dynamic delimiter: any substring (sound)
        piece = builder.image(subject, _substring_fst(), "explode~")
    return ArrVal(default=piece)


def _h_str_split(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    return ArrVal(default=builder.image(subject, _substring_fst(), "strsplit"))


# ---------------------------------------------------------------------------
# regular-output abstractions
# ---------------------------------------------------------------------------


def _regular_handler(pattern: str, hint: str, taint_arg: int | None = None) -> Handler:
    def handler(builder, values, nodes):
        result = regular_result(builder, pattern, hint)
        if taint_arg is not None:
            arg = _arg(values, taint_arg)
            if isinstance(arg, StrVal):
                _keep_taint(builder, arg, result)
        return result

    return handler


def _widen_handler(taint_args: tuple[int, ...] = (0,)) -> Handler:
    def handler(builder, values, nodes):
        subjects = [
            builder.to_str(_arg(values, index))
            for index in taint_args
            if _arg(values, index) is not None
        ]
        if not subjects:
            return builder.any_string(hint="▽")
        joined = builder.join(subjects, "args")
        return builder.widen(joined, "▽")

    # the audit pass distinguishes "modeled by widening" from exact models
    handler.widens = True
    return handler


def _any_handler(taint_args: tuple[int, ...] = (0,), hint: str = "▽*") -> Handler:
    """Sound Σ* fallback for *character-introducing* builtins (decoders,
    case extension, serialization, …).  Unlike :func:`_widen_handler`'s
    charset-closure, the output alphabet here is not bounded by the
    input's — ``urldecode("%27")`` contains a quote the input never had —
    so the only sound regular abstraction is Σ* carrying the arguments'
    taint.  The differential oracle is what caught the closure-widening
    variants under-approximating."""

    def handler(builder, values, nodes):
        return _dynamic_fallback(builder, values, taint_args, hint)

    handler.widens = True
    return handler


def _identity_handler(index: int = 0) -> Handler:
    def handler(builder, values, nodes):
        return _str_arg(builder, values, index)

    return handler


def _h_intval(builder, values, nodes):
    return regular_result(builder, r"-?[0-9]+", "intval")


def _h_number_format(builder, values, nodes):
    if len(nodes) > 2:
        # custom decimal-point / thousands separators can be anything
        return builder.any_string(hint="numfmt~")
    return regular_result(builder, r"-?[0-9][0-9,]*(\.[0-9]+)?", "numfmt")


#: characters a date()/strftime() format can emit when every format char
#: is drawn from this set (conversion outputs are letters/digits/colon)
_DATE_ALPHABET = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789 :,./+-"
)


def _h_date(builder, values, nodes):
    fmt = literal_str(nodes[0] if nodes else None)
    if fmt is not None and all(char in _DATE_ALPHABET for char in fmt):
        # unknown format chars pass through literally, so the output
        # alphabet is only bounded when the *format* stays inside it
        return regular_result(builder, r"[A-Za-z0-9 :,./+-]*", "date")
    return builder.any_string(hint="date~")


def _h_urlencode(builder, values, nodes):
    # alphabet covers both urlencode (keeps ``.-_``, emits ``+`` for
    # space) and rawurlencode (additionally keeps ``~``); ``*`` is kept
    # by urlencode on some PHP versions, so it stays in the union
    subject = _str_arg(builder, values, 0)
    result = regular_result(builder, r"[A-Za-z0-9%._+*~-]*", "urlenc")
    return _keep_taint(builder, subject, result)


def _h_chr(builder, values, nodes):
    # any single character — the regex ``.`` would exclude newline
    return builder.from_symbols([CharSet.any_char()], "chr")


def _h_dirname(builder, values, nodes):
    # dirname("name") == "." — not a substring of the input, so the
    # substring image alone under-approximates
    subject = _str_arg(builder, values, 0)
    sub = builder.image(subject, _substring_fst(), "dirname")
    return builder.join([sub, builder.literal(".")], "dirname∪")


def _h_base64_encode(builder, values, nodes):
    subject = _str_arg(builder, values, 0)
    result = regular_result(builder, r"[A-Za-z0-9+/]*={0,2}", "b64")
    return _keep_taint(builder, subject, result)


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

NUMERIC = r"-?[0-9]+"
HEX32 = r"[0-9a-f]{32}"
HEX40 = r"[0-9a-f]{40}"

BUILTINS: dict[str, Handler] = {
    # sanitizers / escaping (exact transducers)
    "addslashes": _h_addslashes,
    "stripslashes": _h_stripslashes,
    "mysql_real_escape_string": _h_mysql_escape,
    "mysql_escape_string": _h_mysql_escape,
    "mysqli_real_escape_string": _h_mysqli_escape,
    "pg_escape_string": _h_pg_escape,
    "sqlite_escape_string": _h_sqlite_escape,
    "htmlspecialchars": _h_htmlspecialchars,
    "htmlentities": _h_htmlspecialchars,
    "escapeshellarg": _h_escapeshellarg,
    "preg_quote": _h_preg_quote,
    "quotemeta": _h_quotemeta,
    # replacement family
    "str_replace": _h_str_replace,
    # case-insensitive matching is not FST-expressible with our literal
    # replace machinery; Σ*+taint, never str_replace's exact image
    "str_ireplace": _any_handler((0, 1, 2), "ireplace▽"),
    "preg_replace": _h_preg_replace,
    "ereg_replace": _h_ereg_replace,
    "eregi_replace": _h_ereg_replace,
    "strtr": _h_strtr,
    "nl2br": _h_nl2br,
    # case / shape
    "strtolower": _h_strtolower,
    "strtoupper": _h_strtoupper,
    "mb_strtolower": _h_strtolower,
    "mb_strtoupper": _h_strtoupper,
    # case extension escapes the input's charset closure ("a" → "A"), so
    # these must fall back to Σ*, not to widening
    "lcfirst": _any_handler(),
    "ucfirst": _any_handler(),
    "ucwords": _any_handler(),
    "trim": _h_trim,
    "ltrim": _h_trim,
    "rtrim": _h_trim,
    "chop": _h_trim,
    "strrev": _h_strrev,
    "substr": _h_substr,
    "mb_substr": _h_substr,
    "str_repeat": _h_str_repeat,
    "str_pad": _h_str_pad,
    # these *insert* characters the input need not contain (break
    # strings, decoded entities, interpreted escapes): Σ* + taint
    "wordwrap": _any_handler(),
    "chunk_split": _any_handler(),
    "stripcslashes": _any_handler(),
    "html_entity_decode": _any_handler(),
    "htmlspecialchars_decode": _any_handler(),
    # strip_tags only ever *removes* characters, so the charset-closure
    # widening really is sound for it
    "strip_tags": _widen_handler(),
    # formatting / structure
    "sprintf": _h_sprintf,
    "vsprintf": _h_vsprintf,
    "implode": _h_implode,
    "join": _h_implode,
    "explode": _h_explode,
    "str_split": _h_str_split,
    "preg_split": _h_explode,
    "split": _h_explode,
    # numeric conversions (sanitizing)
    "intval": _h_intval,
    "floatval": _regular_handler(r"-?[0-9]+(\.[0-9]+)?", "floatval"),
    "doubleval": _regular_handler(r"-?[0-9]+(\.[0-9]+)?", "floatval"),
    "abs": _regular_handler(r"[0-9]+(\.[0-9]+)?", "abs"),
    "round": _regular_handler(r"-?[0-9]+(\.[0-9]+)?", "round"),
    "floor": _regular_handler(NUMERIC, "floor"),
    "ceil": _regular_handler(NUMERIC, "ceil"),
    "count": _regular_handler(NUMERIC, "count"),
    "sizeof": _regular_handler(NUMERIC, "sizeof"),
    "strlen": _regular_handler(NUMERIC, "strlen"),
    "mb_strlen": _regular_handler(NUMERIC, "strlen"),
    # strpos/strrpos return false (string "") when there is no match
    "strpos": _regular_handler(r"(-?[0-9]+)?", "strpos"),
    "strrpos": _regular_handler(r"(-?[0-9]+)?", "strrpos"),
    "time": _regular_handler(NUMERIC, "time"),
    "mktime": _regular_handler(NUMERIC, "mktime"),
    "rand": _regular_handler(NUMERIC, "rand"),
    "mt_rand": _regular_handler(NUMERIC, "mt_rand"),
    "number_format": _h_number_format,
    "ord": _regular_handler(NUMERIC, "ord"),
    "hexdec": _regular_handler(NUMERIC, "hexdec"),
    "octdec": _regular_handler(NUMERIC, "octdec"),
    "bindec": _regular_handler(NUMERIC, "bindec"),
    # digest / encoding (safe or restricted alphabets)
    "md5": _regular_handler(HEX32, "md5"),
    "sha1": _regular_handler(HEX40, "sha1"),
    "crc32": _regular_handler(NUMERIC, "crc32"),
    "uniqid": _regular_handler(r"[0-9a-f.]+", "uniqid"),
    "dechex": _regular_handler(r"[0-9a-f]+", "dechex"),
    "decoct": _regular_handler(r"[0-7]+", "decoct"),
    "decbin": _regular_handler(r"[01]+", "decbin"),
    "bin2hex": _regular_handler(r"[0-9a-f]*", "bin2hex", taint_arg=0),
    "urlencode": _h_urlencode,
    "rawurlencode": _h_urlencode,
    "base64_encode": _h_base64_encode,
    "chr": _h_chr,
    "date": _h_date,
    "strftime": _h_date,
    "gmdate": _h_date,
    # expanding / unmodellable — Σ*, keep taint: all of these can emit
    # characters the input never contained, so charset-closure widening
    # would under-approximate (urldecode("%27") contains a quote)
    "urldecode": _any_handler(),
    "rawurldecode": _any_handler(),
    "base64_decode": _any_handler(),
    "utf8_encode": _any_handler(),
    "utf8_decode": _any_handler(),
    "convert_uuencode": _any_handler(),
    "serialize": _any_handler(),
    "unserialize": _any_handler(),
    "gzcompress": _any_handler(),
    "gzuncompress": _any_handler(),
    "strval": _identity_handler(),
    # the remediation engine's prepared-statement shim
    # (repro.remediate.synthesize): executes the template with the
    # array-bound holes attached out of band, so the query reaching the
    # sink is exactly the untainted template literal
    "sqlciv_prepare": _identity_handler(),
    # misc string
    "basename": _h_substr,
    "dirname": _h_dirname,
    "pathinfo": _h_substr,
    "strstr": _h_substr,
    "stristr": _h_substr,
    "strrchr": _h_substr,
    "strchr": _h_substr,
    "get_magic_quotes_gpc": _regular_handler(r"[01]", "magicquotes"),
    "gettype": _regular_handler(
        r"(boolean|integer|double|string|array|object|NULL)", "gettype"
    ),
    "php_uname": _regular_handler(r"[A-Za-z0-9 ._-]*", "uname"),
    "phpversion": _regular_handler(r"[0-9.]+", "phpversion"),
}

#: Names of builtins whose return value is an *array* of pieces.
ARRAY_RESULTS = frozenset({"explode", "str_split", "preg_split", "split"})

#: Statement-ish builtins that return nothing interesting and have no
#: string effect (registered so the analysis does not widen on them).
NO_EFFECT = frozenset(
    """
    header error_reporting ini_set ini_get set_time_limit session_start
    session_destroy session_write_close setcookie ob_start ob_end_flush
    ob_end_clean flush usleep sleep error_log trigger_error define defined
    srand mt_srand register_shutdown_function function_exists class_exists
    method_exists extension_loaded connection_aborted ignore_user_abort
    unset print printf echo var_dump print_r assert
    """.split()
)


#: Builtins whose *only* model is the sound widening fallback — the call
#: succeeds but the result is a charset-closure over-approximation.  The
#: soundness audit reports these as ``widened`` (precision caveats, not
#: soundness holes).  Handlers that widen only on dynamic arguments
#: (``str_replace`` with a non-literal pattern, …) are caught at run time
#: through :meth:`GrammarBuilder.widen`'s audit hook instead.
WIDENING_BUILTINS = frozenset(
    name for name, handler in BUILTINS.items() if getattr(handler, "widens", False)
)


def model_call(
    name: str,
    builder: GrammarBuilder,
    values: list[Value | None],
    nodes: list[ast.Expr],
    audit=None,
) -> Value | None:
    """Apply the model for builtin ``name``; None if no model exists.

    When an :class:`~repro.analysis.audit.AuditTrail` is supplied, every
    call that falls through to the widening fallback records the builtin's
    *name* (not just the fact of widening), so the audit can report
    "N calls to widened builtins: …" per page.
    """
    handler = BUILTINS.get(name)
    if handler is not None:
        if audit is not None and getattr(handler, "widens", False):
            audit.record_builtin_widening(name)
        return handler(builder, values, nodes)
    if name in NO_EFFECT:
        return builder.literal("")
    return None


# ---------------------------------------------------------------------------
# predicates (branch refinement languages)
# ---------------------------------------------------------------------------


#: boolean predicates the branch refinement (§3.1.2) understands; their
#: *return value* needs no string model, so a call is never "unknown"
PREDICATE_FUNCTIONS = frozenset(
    """
    preg_match preg_match_all ereg eregi is_numeric ctype_digit
    ctype_alnum ctype_alpha ctype_xdigit is_int is_integer in_array
    """.split()
)

#: Truth languages of the simple character-class predicates.  This dict
#: is *the* definition of these predicates in our PHP subset: branch
#: refinement builds its condition languages from it, and the concrete
#: interpreter in :mod:`repro.oracle` evaluates the very same patterns —
#: if the two ever read different sources they could drift apart and the
#: differential oracle would (rightly) flag it.
PREDICATE_PATTERNS = {
    "is_numeric": r"^[+-]?([0-9]+(\.[0-9]*)?|\.[0-9]+)([eE][+-]?[0-9]+)?$",
    "ctype_digit": r"^[0-9]+$",
    "ctype_alnum": r"^[0-9A-Za-z]+$",
    "ctype_alpha": r"^[A-Za-z]+$",
    "ctype_xdigit": r"^[0-9A-Fa-f]+$",
    "is_int": r"^-?[0-9]+$",
    "is_integer": r"^-?[0-9]+$",
}


def predicate_language(call: ast.Call) -> tuple[ast.Expr, Pattern | NFA] | None:
    """For a boolean builtin call, return ``(constrained_arg, language)``
    where ``language`` describes the strings for which the call is true.

    ``preg_match``-family results carry :class:`Pattern` (so the caller
    can build the complement for the else-branch); the ``ctype`` family
    returns anchored patterns too.
    """
    name = call.name
    args = call.args
    if name in ("preg_match", "preg_match_all") and len(args) >= 2:
        pattern_text = literal_str(args[0])
        if pattern_text is None:
            return None
        try:
            return args[1], parse_php_regex(pattern_text)
        except RegexError:
            return None
    if name in ("ereg", "eregi") and len(args) >= 2:
        pattern_text = literal_str(args[0])
        if pattern_text is None:
            return None
        try:
            return args[1], parse_regex(pattern_text, ignore_case=(name == "eregi"))
        except RegexError:
            return None
    if name in PREDICATE_PATTERNS and args:
        return args[0], parse_regex(PREDICATE_PATTERNS[name])
    if name == "in_array" and len(args) >= 2 and isinstance(args[1], ast.ArrayLit):
        literals = []
        for _, value in args[1].items:
            text = literal_str(value)
            if text is None:
                return None
            literals.append(text)
        language = NFA.nothing()
        for text in literals:
            language = language.union(NFA.from_string(text))
        return args[0], language
    return None


# ---------------------------------------------------------------------------
# concrete counterparts (the differential oracle's ground truth)
# ---------------------------------------------------------------------------
#
# Every abstract model above has a *concrete* implementation below, and
# the two live in the same module deliberately: the oracle in
# :mod:`repro.oracle` executes pages with these functions and checks the
# produced strings against the grammar the handlers build — if a model
# and its semantics drift apart, the fuzzer reports a divergence instead
# of the gap silently weakening Theorem 3.4.  ``test_concrete_parity``
# additionally asserts ``set(BUILTINS) ⊆ set(CONCRETE)`` so a new model
# cannot land without ground truth.
#
# Conventions:
#
# * functions receive *plain* Python values (str / int / float / bool /
#   None / dict for PHP arrays — insertion-ordered, string keys); the
#   interpreter strips taint before the call and re-attaches it per the
#   spec's ``taint`` mode;
# * ambient effects (``rand``, ``time``, ``uniqid``) read a
#   :class:`ConcreteState` so runs are deterministic and seedable;
# * where real PHP is irreducibly non-deterministic or out of scope
#   (clock values, locale) we fix a deterministic *subset semantics* and
#   the abstract model over-approximates that — documented per function.


class ConcreteState:
    """Deterministic ambient state for concrete evaluation: a seeded RNG
    for ``rand``/``mt_rand``, a fixed clock for ``time``/``date``, and a
    counter for ``uniqid``."""

    def __init__(self, seed: int = 0, clock: int = 0) -> None:
        import random

        self.rng = random.Random(seed)
        self.clock = clock
        self._uniqid = 0

    def next_uniqid(self) -> int:
        self._uniqid += 1
        return self._uniqid


@dataclass(frozen=True)
class ConcreteSpec:
    """Concrete implementation + taint-weaving mode of one builtin.

    ``taint`` tells the interpreter how the result relates to the
    arguments' taint, mirroring the *model's* labeling behavior:

    * ``charwise`` — per-character transducer: apply the function to each
      taint segment of the subject independently (self-checked against
      the full-string result; on mismatch the result degrades to a
      single "blurred" tainted segment excluded from confinement
      cross-checks);
    * ``whole``    — the model labels its whole Σ*/regular result, so the
      whole concrete result is one tainted segment iff any argument was;
    * ``drop``     — the model is an untainted regular set (digests,
      lengths, numbers): result untainted;
    * ``interp``   — the interpreter weaves taint itself (slicing,
      sprintf, implode, …); ``fn`` still defines the ground-truth text.
    """

    fn: Callable
    taint: str = "drop"
    subject: int = 0


def _at(args: list, index: int):
    return args[index] if index < len(args) else None


def _str_at(args: list, index: int) -> str:
    return to_php_str(_at(args, index))


def php_float_str(value: float) -> str:
    """PHP's float-to-string: integral floats print without a decimal
    point (``echo 6/2`` → ``3``).  Matches :func:`_php_number_str` on
    parsed literals, which round-trip through ``repr``."""
    if math.isnan(value):
        return "NAN"
    if math.isinf(value):
        return "INF" if value > 0 else "-INF"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def to_php_str(value) -> str:
    """PHP string coercion of a plain value (arrays print ``Array``,
    matching :meth:`GrammarBuilder.to_str`)."""
    if isinstance(value, str):
        return value
    if value is None or value is False:
        return ""
    if value is True:
        return "1"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return php_float_str(value)
    if isinstance(value, dict):
        return "Array"
    return str(value)


_INT_PREFIX = re.compile(r"[+-]?[0-9]+")
_FLOAT_PREFIX = re.compile(r"[+-]?([0-9]+(\.[0-9]*)?|\.[0-9]+)([eE][+-]?[0-9]+)?")
_PHP_WHITESPACE = " \t\n\r\v\f"


def php_int(value) -> int:
    """PHP integer coercion (leading numeric prefix of strings)."""
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        return int(value)
    if isinstance(value, str):
        match = _INT_PREFIX.match(value.lstrip(_PHP_WHITESPACE))
        return int(match.group()) if match else 0
    if isinstance(value, dict):
        return 1 if value else 0
    return 0


def php_float(value) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        match = _FLOAT_PREFIX.match(value.lstrip(_PHP_WHITESPACE))
        return float(match.group()) if match else 0.0
    return 0.0


def php_bool(value) -> bool:
    """PHP truthiness: ``""``, ``"0"``, 0, 0.0, empty array, NULL are
    falsy; everything else (including ``"0.0"`` and ``" "``) is truthy."""
    if isinstance(value, str):
        return value not in ("", "0")
    if isinstance(value, dict):
        return bool(value)
    return bool(value)


# --- escaping ---------------------------------------------------------------

_ADDSLASHES_TABLE = {"\0": "\\0", "'": "\\'", '"': '\\"', "\\": "\\\\"}
_MYSQL_ESCAPE_TABLE = {
    "\0": "\\0",
    "\n": "\\n",
    "\r": "\\r",
    "\x1a": "\\Z",
    "'": "\\'",
    '"': '\\"',
    "\\": "\\\\",
}


def php_addslashes(value: str) -> str:
    return "".join(_ADDSLASHES_TABLE.get(char, char) for char in value)


def php_stripslashes(value: str) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        char = value[i]
        if char == "\\" and i + 1 < len(value):
            escaped = value[i + 1]
            out.append("\0" if escaped == "0" else escaped)
            i += 2
        elif char == "\\":
            i += 1  # trailing lone backslash is dropped
        else:
            out.append(char)
            i += 1
    return "".join(out)


def php_mysql_escape(value: str) -> str:
    return "".join(_MYSQL_ESCAPE_TABLE.get(char, char) for char in value)


def php_pg_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace("'", "''")


def php_sqlite_escape(value: str) -> str:
    return value.replace("'", "''")


def php_escapeshellarg(value: str) -> str:
    return "'" + value.replace("'", "'\\''") + "'"


def _quote_style(nodes: list, index: int = 1) -> str:
    if len(nodes) > index and isinstance(nodes[index], ast.ConstFetch):
        return nodes[index].name
    return "ENT_COMPAT"


def php_htmlspecialchars(value: str, style: str = "ENT_COMPAT") -> str:
    table = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
    if style in ("ENT_COMPAT", "ENT_QUOTES"):
        table['"'] = "&quot;"
    if style == "ENT_QUOTES":
        table["'"] = "&#039;"
    return "".join(table.get(char, char) for char in value)


def php_htmlspecialchars_decode(value: str, style: str = "ENT_COMPAT") -> str:
    table = {"&amp;": "&", "&lt;": "<", "&gt;": ">"}
    if style in ("ENT_COMPAT", "ENT_QUOTES"):
        table["&quot;"] = '"'
    if style == "ENT_QUOTES":
        table["&#039;"] = "'"
        table["&#39;"] = "'"
    pattern = re.compile("|".join(re.escape(entity) for entity in table))
    return pattern.sub(lambda match: table[match.group()], value)


def php_preg_quote(value: str) -> str:
    return "".join("\\" + char if char in REGEX_SPECIALS else char for char in value)


def php_quotemeta(value: str) -> str:
    return "".join("\\" + char if char in QUOTEMETA_CHARS else char for char in value)


def php_nl2br(value: str) -> str:
    return re.sub(r"\r\n|\n\r|\n|\r", lambda m: "<br />" + m.group(), value)


# --- replacement ------------------------------------------------------------


def _listify(value) -> list[str]:
    if isinstance(value, dict):
        return [to_php_str(item) for item in value.values()]
    return [to_php_str(value)]


def php_str_replace(search, replace, subject: str) -> str:
    searches = _listify(search)
    if isinstance(replace, dict):
        replacements = _listify(replace)
        replacements += [""] * (len(searches) - len(replacements))
    else:
        replacements = [to_php_str(replace)] * len(searches)
    result = subject
    for needle, replacement in zip(searches, replacements):
        if needle:
            result = result.replace(needle, replacement)
    return result


def php_str_ireplace(search, replace, subject: str) -> str:
    searches = _listify(search)
    if isinstance(replace, dict):
        replacements = _listify(replace)
        replacements += [""] * (len(searches) - len(replacements))
    else:
        replacements = [to_php_str(replace)] * len(searches)
    result = subject
    for needle, replacement in zip(searches, replacements):
        if needle:
            result = re.sub(
                re.escape(needle),
                lambda _m, rep=replacement: rep,
                result,
                flags=re.IGNORECASE,
            )
    return result


@lru_cache(maxsize=512)
def compile_php_pattern(pattern_text: str) -> "re.Pattern[str]":
    """A delimiter-wrapped PCRE pattern as a Python regex; raises
    :class:`ValueError` on constructs outside our subset (``U`` flag)."""
    if len(pattern_text) < 2:
        raise ValueError(f"bad pattern {pattern_text!r}")
    delimiter = pattern_text[0]
    closing = {"(": ")", "[": "]", "{": "}", "<": ">"}.get(delimiter, delimiter)
    end = pattern_text.rfind(closing)
    if end <= 0:
        raise ValueError(f"bad pattern {pattern_text!r}")
    body, modifiers = pattern_text[1:end], pattern_text[end + 1 :]
    flags = 0
    for modifier in modifiers:
        if modifier == "i":
            flags |= re.IGNORECASE
        elif modifier == "m":
            flags |= re.MULTILINE
        elif modifier == "s":
            flags |= re.DOTALL
        elif modifier == "x":
            flags |= re.VERBOSE
        elif modifier == "u":
            pass
        else:
            raise ValueError(f"unsupported modifier {modifier!r}")
    return re.compile(body, flags)


def _php_replacement(replacement: str) -> str:
    """PHP ``$1``/``\\1`` backreferences as a Python template, with every
    other backslash made literal."""
    out: list[str] = []
    i = 0
    while i < len(replacement):
        char = replacement[i]
        if char in "$\\" and i + 1 < len(replacement) and replacement[i + 1].isdigit():
            j = i + 1
            while j < len(replacement) and replacement[j].isdigit():
                j += 1
            out.append("\\" + replacement[i + 1 : j])
            i = j
        elif char == "\\":
            out.append("\\\\")
            i += 1
        else:
            out.append(char)
            i += 1
    return "".join(out)


def php_preg_replace(pattern, replacement, subject: str) -> str:
    patterns = _listify(pattern)
    if isinstance(replacement, dict):
        replacements = _listify(replacement)
        replacements += [""] * (len(patterns) - len(replacements))
    else:
        replacements = [to_php_str(replacement)] * len(patterns)
    result = subject
    for pattern_text, repl in zip(patterns, replacements):
        result = compile_php_pattern(pattern_text).sub(_php_replacement(repl), result)
    return result


def php_ereg_replace(pattern: str, replacement: str, subject: str, ignore_case=False) -> str:
    flags = re.IGNORECASE if ignore_case else 0
    return re.compile(pattern, flags).sub(_php_replacement(replacement), subject)


def php_strtr(subject: str, second, third=None) -> str:
    if third is not None:
        from_text, to_text = to_php_str(second), to_php_str(third)
        table = {}
        for f, t in zip(from_text, to_text):
            table[f] = t
        return "".join(table.get(char, char) for char in subject)
    if not isinstance(second, dict):
        return subject
    pairs = sorted(
        ((str(key), to_php_str(val)) for key, val in second.items() if str(key)),
        key=lambda pair: -len(pair[0]),
    )
    out: list[str] = []
    i = 0
    while i < len(subject):
        for needle, repl in pairs:
            if subject.startswith(needle, i):
                out.append(repl)
                i += len(needle)
                break
        else:
            out.append(subject[i])
            i += 1
    return "".join(out)


# --- case / shape -----------------------------------------------------------


def php_strtolower(value: str) -> str:
    # byte semantics: only ASCII A–Z, matching the LOWER marker's image
    return "".join(
        chr(ord(char) + 32) if "A" <= char <= "Z" else char for char in value
    )


def php_strtoupper(value: str) -> str:
    return "".join(
        chr(ord(char) - 32) if "a" <= char <= "z" else char for char in value
    )


def php_ucfirst(value: str) -> str:
    return php_strtoupper(value[:1]) + value[1:] if value else value


def php_lcfirst(value: str) -> str:
    return php_strtolower(value[:1]) + value[1:] if value else value


def php_ucwords(value: str) -> str:
    out: list[str] = []
    boundary = True
    for char in value:
        out.append(php_strtoupper(char) if boundary else char)
        boundary = char in " \t\r\n\f\v"
    return "".join(out)


_DEFAULT_TRIM = " \t\n\r\0\x0b"


def trim_charlist(arg: str | None) -> str:
    """The character list of trim()'s second argument, expanding
    ``a..z`` ranges."""
    if arg is None:
        return _DEFAULT_TRIM
    chars: list[str] = []
    i = 0
    while i < len(arg):
        if i + 3 < len(arg) and arg[i + 1 : i + 3] == "..":
            chars.extend(
                chr(code) for code in range(ord(arg[i]), ord(arg[i + 3]) + 1)
            )
            i += 4
        else:
            chars.append(arg[i])
            i += 1
    return "".join(chars)


def php_trim(value: str, charlist: str | None = None) -> str:
    return value.strip(trim_charlist(charlist))


def php_ltrim(value: str, charlist: str | None = None) -> str:
    return value.lstrip(trim_charlist(charlist))


def php_rtrim(value: str, charlist: str | None = None) -> str:
    return value.rstrip(trim_charlist(charlist))


def php_substr(value: str, start: int, length: int | None = None) -> str:
    size = len(value)
    if start < 0:
        start = max(0, size + start)
    elif start > size:
        return ""
    if length is None:
        return value[start:]
    if length < 0:
        end = size + length
        return value[start:end] if end > start else ""
    return value[start : start + length]


def php_strstr(haystack: str, needle: str, before: bool = False):
    if not needle:
        return False
    index = haystack.find(needle)
    if index < 0:
        return False
    return haystack[:index] if before else haystack[index:]


def php_stristr(haystack: str, needle: str):
    if not needle:
        return False
    index = haystack.lower().find(needle.lower())
    if index < 0:
        return False
    return haystack[index:]


def php_strrchr(haystack: str, needle: str):
    if not needle:
        return False
    index = haystack.rfind(needle[0])
    return haystack[index:] if index >= 0 else False


def php_str_pad(
    value: str, length: int, pad: str = " ", pad_type: str = "STR_PAD_RIGHT"
) -> str:
    missing = length - len(value)
    if missing <= 0 or not pad:
        return value
    if pad_type == "STR_PAD_LEFT":
        return (pad * missing)[:missing] + value
    if pad_type == "STR_PAD_BOTH":
        left = missing // 2
        right = missing - left
        return (pad * left)[:left] + value + (pad * right)[:right]
    return value + (pad * missing)[:missing]


def php_wordwrap(value: str, width: int = 75, brk: str = "\n", cut: bool = False) -> str:
    if width <= 0:
        return value
    out: list[str] = []
    line_len = 0
    for word in value.split(" "):
        while cut and len(word) > width:
            if line_len:
                out.append(brk)
                line_len = 0
            out.append(word[:width])
            out.append(brk)
            word = word[width:]
        extra = len(word) + (1 if line_len else 0)
        if line_len and line_len + extra > width:
            out.append(brk)
            line_len = 0
        elif line_len:
            out.append(" ")
            line_len += 1
        out.append(word)
        line_len += len(word)
    return "".join(out)


def php_chunk_split(value: str, length: int = 76, end: str = "\r\n") -> str:
    if length <= 0:
        return value
    out: list[str] = []
    for i in range(0, len(value), length):
        out.append(value[i : i + length])
        out.append(end)
    return "".join(out)


def php_strip_tags(value: str) -> str:
    out: list[str] = []
    in_tag = False
    pending: list[str] = []
    for char in value:
        if in_tag:
            if char == ">":
                in_tag = False
                pending = []
        elif char == "<":
            in_tag = True
        else:
            out.append(char)
    # an unclosed '<' swallows the rest of the string (PHP behavior)
    del pending
    return "".join(out)


def php_stripcslashes(value: str) -> str:
    simple = {"n": "\n", "t": "\t", "r": "\r", "a": "\a", "v": "\v", "b": "\b", "f": "\f"}
    out: list[str] = []
    i = 0
    while i < len(value):
        char = value[i]
        if char != "\\" or i + 1 >= len(value):
            out.append(char)
            i += 1
            continue
        escaped = value[i + 1]
        if escaped in simple:
            out.append(simple[escaped])
            i += 2
        elif escaped == "x" and i + 2 < len(value) and value[i + 2] in "0123456789abcdefABCDEF":
            j = i + 2
            while j < len(value) and j < i + 4 and value[j] in "0123456789abcdefABCDEF":
                j += 1
            out.append(chr(int(value[i + 2 : j], 16)))
            i = j
        elif escaped in "01234567":
            j = i + 1
            while j < len(value) and j < i + 4 and value[j] in "01234567":
                j += 1
            out.append(chr(int(value[i + 1 : j], 8) % 256))
            i = j
        else:
            out.append(escaped)
            i += 2
    return "".join(out)


# --- formatting -------------------------------------------------------------

_EXPONENT_ZEROS = re.compile(r"([eE][+-])0*([0-9])")


def _format_directive(directive: str, spec: dict, arg) -> str:
    precision = spec["precision"]
    if directive == "d":
        text = str(php_int(arg))
    elif directive == "u":
        number = php_int(arg)
        text = str(number if number >= 0 else number + (1 << 64))
    elif directive in "fF":
        text = f"{php_float(arg):.{6 if precision is None else precision}f}"
    elif directive in "eE":
        text = f"{php_float(arg):.{6 if precision is None else precision}e}"
        text = _EXPONENT_ZEROS.sub(r"\1\2", text)
        if directive == "E":
            text = text.upper()
    elif directive in "gG":
        digits = max(1, 6 if precision is None else precision)
        text = f"{php_float(arg):.{digits}g}"
        text = _EXPONENT_ZEROS.sub(r"\1\2", text)
        if directive == "G":
            text = text.upper()
    elif directive in "xXob":
        number = php_int(arg)
        if number < 0:
            number += 1 << 64
        base = {"x": "x", "X": "X", "o": "o", "b": "b"}[directive]
        text = format(number, base)
    elif directive == "c":
        text = chr(php_int(arg) % 256)
    else:  # %s and unknown conversions
        text = to_php_str(arg)
        if precision is not None:
            text = text[:precision]
    if directive in "dfFeEgG" and "+" in spec["flags"] and not text.startswith("-"):
        text = "+" + text
    width = spec["width"]
    if width > len(text):
        pad_char = spec["pad"] or (
            "0" if "0" in spec["flags"] and "-" not in spec["flags"] else " "
        )
        missing = width - len(text)
        if "-" in spec["flags"]:
            text = text + (spec["pad"] or " ") * missing
        elif pad_char == "0" and text[:1] in "+-":
            text = text[0] + "0" * missing + text[1:]
        else:
            text = pad_char * missing + text
    return text


def php_sprintf(fmt: str, fargs: list) -> str:
    out: list[str] = []
    arg_index = 0
    i = 0
    while i < len(fmt):
        char = fmt[i]
        if char == "%" and i + 1 < len(fmt):
            if fmt[i + 1] == "%":
                out.append("%")
                i += 2
                continue
            spec, directive, next_i = parse_sprintf_spec(fmt, i)
            if directive is None:
                out.append(char)
                i += 1
                continue
            index = spec["argnum"] - 1 if spec["argnum"] else arg_index
            arg = fargs[index] if index < len(fargs) else ""
            out.append(_format_directive(directive, spec, arg))
            if not spec["argnum"]:
                arg_index += 1
            i = next_i
            continue
        out.append(char)
        i += 1
    return "".join(out)


def php_number_format(number: float, decimals: int = 0, dec_point: str = ".", thousands: str = ",") -> str:
    text = f"{number:,.{max(0, decimals)}f}"
    # swap through placeholders so custom separators cannot collide
    text = text.replace(",", "\0").replace(".", "\1")
    return text.replace("\0", thousands).replace("\1", dec_point)


# --- numbers ----------------------------------------------------------------


def php_intval(value, base: int = 10) -> int:
    if base == 10 or not isinstance(value, str):
        return php_int(value)
    text = value.strip(_PHP_WHITESPACE)
    match = re.match(r"[+-]?[0-9a-zA-Z]+", text)
    if not match:
        return 0
    try:
        return int(match.group(), base)
    except ValueError:
        return 0


def php_round(value: float, precision: int = 0) -> float:
    factor = 10.0**precision
    scaled = value * factor
    rounded = math.floor(scaled + 0.5) if scaled >= 0 else math.ceil(scaled - 0.5)
    return rounded / factor


def php_strpos(haystack: str, needle: str, offset: int = 0):
    if not needle:
        return False
    index = haystack.find(needle, offset)
    return False if index < 0 else index


def php_strrpos(haystack: str, needle: str):
    if not needle:
        return False
    index = haystack.rfind(needle)
    return False if index < 0 else index


def php_count(value) -> int:
    if isinstance(value, dict):
        return len(value)
    return 0 if value is None else 1


def _filtered_base(value: str, alphabet: str, base: int) -> int:
    digits = "".join(char for char in value if char in alphabet)
    return int(digits, base) if digits else 0


def php_hexdec(value: str) -> int:
    return _filtered_base(value, "0123456789abcdefABCDEF", 16)


def php_octdec(value: str) -> int:
    return _filtered_base(value, "01234567", 8)


def php_bindec(value: str) -> int:
    return _filtered_base(value, "01", 2)


def _unsigned64(number: int) -> int:
    return number + (1 << 64) if number < 0 else number


# --- digests / encodings ----------------------------------------------------


def _latin1(value: str) -> bytes:
    return value.encode("latin-1", "replace")


def php_urlencode(value: str) -> str:
    out: list[str] = []
    for char in value:
        if char.isascii() and (char.isalnum() or char in "._-"):
            out.append(char)
        elif char == " ":
            out.append("+")
        else:
            out.append(f"%{ord(char) & 0xFF:02X}")
    return "".join(out)


def php_rawurlencode(value: str) -> str:
    out: list[str] = []
    for char in value:
        if char.isascii() and (char.isalnum() or char in "._~-"):
            out.append(char)
        else:
            out.append(f"%{ord(char) & 0xFF:02X}")
    return "".join(out)


def _decode_percent(value: str, plus_is_space: bool) -> str:
    out: list[str] = []
    i = 0
    while i < len(value):
        char = value[i]
        if char == "%" and re.match(r"[0-9a-fA-F]{2}", value[i + 1 : i + 3]):
            out.append(chr(int(value[i + 1 : i + 3], 16)))
            i += 3
        elif plus_is_space and char == "+":
            out.append(" ")
            i += 1
        else:
            out.append(char)
            i += 1
    return "".join(out)


def php_urldecode(value: str) -> str:
    return _decode_percent(value, plus_is_space=True)


def php_rawurldecode(value: str) -> str:
    return _decode_percent(value, plus_is_space=False)


def php_base64_decode(value: str):
    body = re.sub(r"[^0-9A-Za-z+/=]", "", value).split("=")[0]
    body += "=" * (-len(body) % 4)
    try:
        return base64.b64decode(body).decode("latin-1")
    except (binascii.Error, ValueError):
        return False


def php_utf8_encode(value: str) -> str:
    return "".join(chr(byte) for byte in value.encode("utf-8", "replace"))


def php_utf8_decode(value: str) -> str:
    return bytes(ord(char) & 0xFF for char in value).decode("utf-8", "replace")


def php_convert_uuencode(value: str) -> str:
    data = _latin1(value)
    out: list[str] = []
    for i in range(0, len(data), 45):
        out.append(binascii.b2a_uu(data[i : i + 45]).decode("latin-1"))
    out.append("`\n")
    return "".join(out)


def php_serialize(value) -> str:
    if isinstance(value, bool):
        return f"b:{int(value)};"
    if isinstance(value, int):
        return f"i:{value};"
    if isinstance(value, float):
        return f"d:{repr(value)};"
    if value is None:
        return "N;"
    if isinstance(value, dict):
        parts = []
        for key, item in value.items():
            key_text = str(key)
            if re.fullmatch(r"-?[0-9]+", key_text):
                parts.append(f"i:{key_text};")
            else:
                parts.append(php_serialize(key_text))
            parts.append(php_serialize(item))
        return f"a:{len(value)}:{{{''.join(parts)}}}"
    text = to_php_str(value)
    return f's:{len(text)}:"{text}";'


def php_unserialize(value: str):
    def parse(pos: int):
        if value.startswith("N;", pos):
            return None, pos + 2
        kind = value[pos : pos + 2]
        if kind == "b:":
            end = value.index(";", pos)
            return value[pos + 2 : end] == "1", end + 1
        if kind == "i:":
            end = value.index(";", pos)
            return int(value[pos + 2 : end]), end + 1
        if kind == "d:":
            end = value.index(";", pos)
            return float(value[pos + 2 : end]), end + 1
        if kind == "s:":
            colon = value.index(":", pos + 2)
            length = int(value[pos + 2 : colon])
            start = colon + 2  # skip opening quote
            text = value[start : start + length]
            if value[start + length : start + length + 2] != '";':
                raise ValueError("bad string")
            return text, start + length + 2
        if kind == "a:":
            colon = value.index(":", pos + 2)
            size = int(value[pos + 2 : colon])
            cursor = colon + 2  # skip opening brace
            result: dict = {}
            for _ in range(size):
                key, cursor = parse(cursor)
                item, cursor = parse(cursor)
                result[str(key)] = item
            if value[cursor : cursor + 1] != "}":
                raise ValueError("bad array")
            return result, cursor + 1
        raise ValueError(f"bad tag at {pos}")

    try:
        result, end = parse(0)
    except (ValueError, IndexError):
        return False
    return result if end == len(value) else False


def php_gzuncompress(value: str):
    try:
        return zlib.decompress(_latin1(value)).decode("latin-1")
    except zlib.error:
        return False


# --- paths / dates / misc ---------------------------------------------------


def php_basename(path: str, suffix: str = "") -> str:
    trimmed = path.rstrip("/")
    if not trimmed:
        return ""
    base = trimmed[trimmed.rfind("/") + 1 :]
    if suffix and base != suffix and base.endswith(suffix):
        base = base[: -len(suffix)]
    return base


def php_dirname(path: str) -> str:
    trimmed = path.rstrip("/")
    if not trimmed:
        return "/" if path else ""
    index = trimmed.rfind("/")
    if index < 0:
        return "."
    if index == 0:
        return "/"
    return trimmed[:index]


def php_pathinfo(path: str) -> dict:
    base = php_basename(path)
    dot = base.rfind(".")
    info = {"dirname": php_dirname(path), "basename": base}
    if dot > 0:
        info["extension"] = base[dot + 1 :]
        info["filename"] = base[:dot]
    else:
        info["filename"] = base
    return info


_MONTHS = ["Jan", "Feb", "Mar", "Apr", "May", "Jun",
           "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"]
_DAYS = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"]


def php_date(fmt: str, timestamp: int) -> str:
    t = _time.gmtime(timestamp)
    out: list[str] = []
    i = 0
    while i < len(fmt):
        char = fmt[i]
        if char == "\\" and i + 1 < len(fmt):
            out.append(fmt[i + 1])
            i += 2
            continue
        if char == "Y":
            out.append(f"{t.tm_year:04d}")
        elif char == "y":
            out.append(f"{t.tm_year % 100:02d}")
        elif char == "m":
            out.append(f"{t.tm_mon:02d}")
        elif char == "n":
            out.append(str(t.tm_mon))
        elif char == "d":
            out.append(f"{t.tm_mday:02d}")
        elif char == "j":
            out.append(str(t.tm_mday))
        elif char == "H":
            out.append(f"{t.tm_hour:02d}")
        elif char == "G":
            out.append(str(t.tm_hour))
        elif char == "i":
            out.append(f"{t.tm_min:02d}")
        elif char == "s":
            out.append(f"{t.tm_sec:02d}")
        elif char == "D":
            out.append(_DAYS[t.tm_wday])
        elif char == "M":
            out.append(_MONTHS[t.tm_mon - 1])
        elif char == "N":
            out.append(str(t.tm_wday + 1))
        elif char == "w":
            out.append(str((t.tm_wday + 1) % 7))
        elif char == "U":
            out.append(str(timestamp))
        else:
            out.append(char)
        i += 1
    return "".join(out)


_GETTYPE_NAMES = [
    (bool, "boolean"),
    (int, "integer"),
    (float, "double"),
    (str, "string"),
    (dict, "array"),
]


def php_gettype(value) -> str:
    if value is None:
        return "NULL"
    for kind, name in _GETTYPE_NAMES:
        if isinstance(value, kind):
            return name
    return "object"


# --- predicates (must agree with the refinement languages) ------------------


@lru_cache(maxsize=256)
def _search_dfa(pattern_text: str, php: bool, ignore_case: bool):
    pattern = (
        parse_php_regex(pattern_text)
        if php
        else parse_regex(pattern_text, ignore_case=ignore_case)
    )
    return search_language(pattern).determinize()


def php_preg_match(pattern_text: str, subject: str) -> int:
    """Truth value via the *analysis's own* regex engine: branch
    refinement intersects with ``search_language(pattern)``, so concrete
    evaluation must use the same language or predicate semantics could
    drift between the two sides of the differential check."""
    try:
        return 1 if _search_dfa(pattern_text, True, False).accepts_string(subject) else 0
    except RegexError as exc:
        raise ValueError(str(exc)) from exc


def php_ereg(pattern_text: str, subject: str, ignore_case: bool = False):
    try:
        matched = _search_dfa(pattern_text, False, ignore_case).accepts_string(subject)
    except RegexError as exc:
        raise ValueError(str(exc)) from exc
    return 1 if matched else False


def php_predicate(name: str, value) -> bool:
    """The character-class predicates, evaluated from the very same
    :data:`PREDICATE_PATTERNS` the branch refinement uses."""
    return re.search(PREDICATE_PATTERNS[name], to_php_str(value)) is not None


def php_in_array(needle, haystack) -> bool:
    if not isinstance(haystack, dict):
        return False
    target = to_php_str(needle)
    return any(to_php_str(item) == target for item in haystack.values())


# --- array-shaped results ----------------------------------------------------


def php_explode(delimiter: str, subject: str, limit: int | None = None):
    if not delimiter:
        return False
    pieces = subject.split(delimiter)
    if limit is not None and limit > 0 and len(pieces) > limit:
        pieces = pieces[: limit - 1] + [delimiter.join(pieces[limit - 1 :])]
    elif limit is not None and limit < 0:
        pieces = pieces[:limit] or []
    return pieces


def php_str_split(subject: str, length: int = 1):
    if length < 1:
        return False
    return [subject[i : i + length] for i in range(0, len(subject), length)] or [""]


def php_preg_split(pattern_text: str, subject: str):
    return compile_php_pattern(pattern_text).split(subject)


def php_posix_split(pattern_text: str, subject: str):
    return re.split(pattern_text, subject)


def php_implode(glue, pieces) -> str:
    if isinstance(glue, dict) and not isinstance(pieces, dict):
        glue, pieces = pieces, glue
    if not isinstance(pieces, dict):
        return to_php_str(pieces)
    glue_text = to_php_str(glue) if glue is not None else ""
    return glue_text.join(to_php_str(item) for item in pieces.values())


# --- the registry ------------------------------------------------------------

CONCRETE: dict[str, ConcreteSpec] = {
    # escaping (charwise: the models are exact per-character FSTs)
    "addslashes": ConcreteSpec(
        lambda args, nodes, state: php_addslashes(_str_at(args, 0)), "charwise"
    ),
    "stripslashes": ConcreteSpec(
        lambda args, nodes, state: php_stripslashes(_str_at(args, 0)), "charwise"
    ),
    "mysql_real_escape_string": ConcreteSpec(
        lambda args, nodes, state: php_mysql_escape(_str_at(args, 0)), "charwise"
    ),
    "mysql_escape_string": ConcreteSpec(
        lambda args, nodes, state: php_mysql_escape(_str_at(args, 0)), "charwise"
    ),
    "mysqli_real_escape_string": ConcreteSpec(
        lambda args, nodes, state: php_mysql_escape(
            _str_at(args, 1 if len(args) > 1 else 0)
        ),
        "charwise",
        subject=1,
    ),
    "pg_escape_string": ConcreteSpec(
        lambda args, nodes, state: php_pg_escape(_str_at(args, 0)), "charwise"
    ),
    "sqlite_escape_string": ConcreteSpec(
        lambda args, nodes, state: php_sqlite_escape(_str_at(args, 0)), "charwise"
    ),
    # prepared-statement shim: the query is the taint-free template
    # (parameters are bound out of band), matching the abstract model
    "sqlciv_prepare": ConcreteSpec(
        lambda args, nodes, state: _str_at(args, 0), "drop"
    ),
    "htmlspecialchars": ConcreteSpec(
        lambda args, nodes, state: php_htmlspecialchars(
            _str_at(args, 0), _quote_style(nodes)
        ),
        "charwise",
    ),
    "htmlentities": ConcreteSpec(
        lambda args, nodes, state: php_htmlspecialchars(
            _str_at(args, 0), _quote_style(nodes)
        ),
        "charwise",
    ),
    # the model wraps the argument in trusted quote literals and labels
    # the whole quoted result, so the concrete result is one tainted
    # segment — not a charwise transducer image
    "escapeshellarg": ConcreteSpec(
        lambda args, nodes, state: php_escapeshellarg(_str_at(args, 0)), "whole"
    ),
    "preg_quote": ConcreteSpec(
        lambda args, nodes, state: php_preg_quote(_str_at(args, 0)), "charwise"
    ),
    "quotemeta": ConcreteSpec(
        lambda args, nodes, state: php_quotemeta(_str_at(args, 0)), "charwise"
    ),
    # replacement
    "str_replace": ConcreteSpec(
        lambda args, nodes, state: php_str_replace(
            _at(args, 0), _at(args, 1), _str_at(args, 2)
        ),
        "charwise",
        subject=2,
    ),
    "str_ireplace": ConcreteSpec(
        lambda args, nodes, state: php_str_ireplace(
            _at(args, 0), _at(args, 1), _str_at(args, 2)
        ),
        "whole",
    ),
    "preg_replace": ConcreteSpec(
        lambda args, nodes, state: php_preg_replace(
            _at(args, 0), _at(args, 1), _str_at(args, 2)
        ),
        "charwise",
        subject=2,
    ),
    "ereg_replace": ConcreteSpec(
        lambda args, nodes, state: php_ereg_replace(
            _str_at(args, 0), _str_at(args, 1), _str_at(args, 2)
        ),
        "charwise",
        subject=2,
    ),
    "eregi_replace": ConcreteSpec(
        lambda args, nodes, state: php_ereg_replace(
            _str_at(args, 0), _str_at(args, 1), _str_at(args, 2), ignore_case=True
        ),
        "charwise",
        subject=2,
    ),
    "strtr": ConcreteSpec(
        lambda args, nodes, state: php_strtr(
            _str_at(args, 0), _at(args, 1), _at(args, 2)
        ),
        "charwise",
    ),
    "nl2br": ConcreteSpec(
        lambda args, nodes, state: php_nl2br(_str_at(args, 0)), "charwise"
    ),
    # case / shape
    "strtolower": ConcreteSpec(
        lambda args, nodes, state: php_strtolower(_str_at(args, 0)), "charwise"
    ),
    "strtoupper": ConcreteSpec(
        lambda args, nodes, state: php_strtoupper(_str_at(args, 0)), "charwise"
    ),
    "mb_strtolower": ConcreteSpec(
        lambda args, nodes, state: php_strtolower(_str_at(args, 0)), "charwise"
    ),
    "mb_strtoupper": ConcreteSpec(
        lambda args, nodes, state: php_strtoupper(_str_at(args, 0)), "charwise"
    ),
    "lcfirst": ConcreteSpec(
        lambda args, nodes, state: php_lcfirst(_str_at(args, 0)), "whole"
    ),
    "ucfirst": ConcreteSpec(
        lambda args, nodes, state: php_ucfirst(_str_at(args, 0)), "whole"
    ),
    "ucwords": ConcreteSpec(
        lambda args, nodes, state: php_ucwords(_str_at(args, 0)), "whole"
    ),
    "trim": ConcreteSpec(
        lambda args, nodes, state: php_trim(
            _str_at(args, 0), _str_at(args, 1) if len(args) > 1 else None
        ),
        "interp",
    ),
    "ltrim": ConcreteSpec(
        lambda args, nodes, state: php_ltrim(
            _str_at(args, 0), _str_at(args, 1) if len(args) > 1 else None
        ),
        "interp",
    ),
    "rtrim": ConcreteSpec(
        lambda args, nodes, state: php_rtrim(
            _str_at(args, 0), _str_at(args, 1) if len(args) > 1 else None
        ),
        "interp",
    ),
    "chop": ConcreteSpec(
        lambda args, nodes, state: php_rtrim(
            _str_at(args, 0), _str_at(args, 1) if len(args) > 1 else None
        ),
        "interp",
    ),
    "strrev": ConcreteSpec(
        lambda args, nodes, state: _str_at(args, 0)[::-1], "interp"
    ),
    "substr": ConcreteSpec(
        lambda args, nodes, state: php_substr(
            _str_at(args, 0),
            php_int(_at(args, 1)),
            php_int(_at(args, 2)) if len(args) > 2 else None,
        ),
        "interp",
    ),
    "mb_substr": ConcreteSpec(
        lambda args, nodes, state: php_substr(
            _str_at(args, 0),
            php_int(_at(args, 1)),
            php_int(_at(args, 2)) if len(args) > 2 else None,
        ),
        "interp",
    ),
    "str_repeat": ConcreteSpec(
        lambda args, nodes, state: _str_at(args, 0) * max(0, php_int(_at(args, 1))),
        "interp",
    ),
    "str_pad": ConcreteSpec(
        lambda args, nodes, state: php_str_pad(
            _str_at(args, 0),
            php_int(_at(args, 1)),
            _str_at(args, 2) if len(args) > 2 else " ",
            nodes[3].name
            if len(nodes) > 3 and isinstance(nodes[3], ast.ConstFetch)
            else "STR_PAD_RIGHT",
        ),
        "interp",
    ),
    "wordwrap": ConcreteSpec(
        lambda args, nodes, state: php_wordwrap(
            _str_at(args, 0),
            php_int(_at(args, 1)) if len(args) > 1 else 75,
            _str_at(args, 2) if len(args) > 2 else "\n",
            php_bool(_at(args, 3)) if len(args) > 3 else False,
        ),
        "whole",
    ),
    "chunk_split": ConcreteSpec(
        lambda args, nodes, state: php_chunk_split(
            _str_at(args, 0),
            php_int(_at(args, 1)) if len(args) > 1 else 76,
            _str_at(args, 2) if len(args) > 2 else "\r\n",
        ),
        "whole",
    ),
    "strip_tags": ConcreteSpec(
        lambda args, nodes, state: php_strip_tags(_str_at(args, 0)), "blur"
    ),
    "stripcslashes": ConcreteSpec(
        lambda args, nodes, state: php_stripcslashes(_str_at(args, 0)), "whole"
    ),
    "html_entity_decode": ConcreteSpec(
        lambda args, nodes, state: _html.unescape(_str_at(args, 0)), "whole"
    ),
    "htmlspecialchars_decode": ConcreteSpec(
        lambda args, nodes, state: php_htmlspecialchars_decode(
            _str_at(args, 0), _quote_style(nodes)
        ),
        "whole",
    ),
    # formatting / structure (taint woven by the interpreter)
    "sprintf": ConcreteSpec(
        lambda args, nodes, state: php_sprintf(_str_at(args, 0), args[1:]), "interp"
    ),
    "vsprintf": ConcreteSpec(
        lambda args, nodes, state: php_sprintf(
            _str_at(args, 0),
            list(_at(args, 1).values()) if isinstance(_at(args, 1), dict) else [],
        ),
        "interp",
    ),
    "implode": ConcreteSpec(
        lambda args, nodes, state: php_implode(_at(args, 0), _at(args, 1)), "interp"
    ),
    "join": ConcreteSpec(
        lambda args, nodes, state: php_implode(_at(args, 0), _at(args, 1)), "interp"
    ),
    "explode": ConcreteSpec(
        lambda args, nodes, state: php_explode(
            _str_at(args, 0),
            _str_at(args, 1),
            php_int(_at(args, 2)) if len(args) > 2 else None,
        ),
        "interp",
    ),
    "str_split": ConcreteSpec(
        lambda args, nodes, state: php_str_split(
            _str_at(args, 0), php_int(_at(args, 1)) if len(args) > 1 else 1
        ),
        "interp",
    ),
    "preg_split": ConcreteSpec(
        lambda args, nodes, state: php_preg_split(_str_at(args, 0), _str_at(args, 1)),
        "interp",
    ),
    "split": ConcreteSpec(
        lambda args, nodes, state: php_posix_split(_str_at(args, 0), _str_at(args, 1)),
        "interp",
    ),
    # numbers (untainted regular sets)
    "intval": ConcreteSpec(
        lambda args, nodes, state: php_intval(
            _at(args, 0), php_int(_at(args, 1)) if len(args) > 1 else 10
        )
    ),
    "floatval": ConcreteSpec(lambda args, nodes, state: php_float(_at(args, 0))),
    "doubleval": ConcreteSpec(lambda args, nodes, state: php_float(_at(args, 0))),
    "abs": ConcreteSpec(lambda args, nodes, state: abs(php_float(_at(args, 0)))),
    "round": ConcreteSpec(
        lambda args, nodes, state: php_round(
            php_float(_at(args, 0)), php_int(_at(args, 1)) if len(args) > 1 else 0
        )
    ),
    "floor": ConcreteSpec(
        lambda args, nodes, state: float(math.floor(php_float(_at(args, 0))))
    ),
    "ceil": ConcreteSpec(
        lambda args, nodes, state: float(math.ceil(php_float(_at(args, 0))))
    ),
    "count": ConcreteSpec(lambda args, nodes, state: php_count(_at(args, 0))),
    "sizeof": ConcreteSpec(lambda args, nodes, state: php_count(_at(args, 0))),
    "strlen": ConcreteSpec(lambda args, nodes, state: len(_str_at(args, 0))),
    "mb_strlen": ConcreteSpec(lambda args, nodes, state: len(_str_at(args, 0))),
    "strpos": ConcreteSpec(
        lambda args, nodes, state: php_strpos(
            _str_at(args, 0),
            _str_at(args, 1),
            php_int(_at(args, 2)) if len(args) > 2 else 0,
        )
    ),
    "strrpos": ConcreteSpec(
        lambda args, nodes, state: php_strrpos(_str_at(args, 0), _str_at(args, 1))
    ),
    "time": ConcreteSpec(lambda args, nodes, state: state.clock),
    "mktime": ConcreteSpec(lambda args, nodes, state: state.clock),
    "rand": ConcreteSpec(
        lambda args, nodes, state: state.rng.randint(
            php_int(_at(args, 0)) if len(args) > 1 else 0,
            php_int(_at(args, 1)) if len(args) > 1 else 2**31 - 1,
        )
    ),
    "mt_rand": ConcreteSpec(
        lambda args, nodes, state: state.rng.randint(
            php_int(_at(args, 0)) if len(args) > 1 else 0,
            php_int(_at(args, 1)) if len(args) > 1 else 2**31 - 1,
        )
    ),
    "number_format": ConcreteSpec(
        lambda args, nodes, state: php_number_format(
            php_float(_at(args, 0)),
            php_int(_at(args, 1)) if len(args) > 1 else 0,
            _str_at(args, 2) if len(args) > 2 else ".",
            _str_at(args, 3) if len(args) > 3 else ",",
        )
    ),
    "ord": ConcreteSpec(
        lambda args, nodes, state: ord(_str_at(args, 0)[0]) if _str_at(args, 0) else 0
    ),
    "hexdec": ConcreteSpec(lambda args, nodes, state: php_hexdec(_str_at(args, 0))),
    "octdec": ConcreteSpec(lambda args, nodes, state: php_octdec(_str_at(args, 0))),
    "bindec": ConcreteSpec(lambda args, nodes, state: php_bindec(_str_at(args, 0))),
    # digests / encodings
    "md5": ConcreteSpec(
        lambda args, nodes, state: hashlib.md5(_latin1(_str_at(args, 0))).hexdigest()
    ),
    "sha1": ConcreteSpec(
        lambda args, nodes, state: hashlib.sha1(_latin1(_str_at(args, 0))).hexdigest()
    ),
    "crc32": ConcreteSpec(
        lambda args, nodes, state: zlib.crc32(_latin1(_str_at(args, 0))) & 0xFFFFFFFF
    ),
    "uniqid": ConcreteSpec(
        lambda args, nodes, state: f"{state.clock:08x}{state.next_uniqid():05x}"
    ),
    "dechex": ConcreteSpec(
        lambda args, nodes, state: format(_unsigned64(php_int(_at(args, 0))), "x")
    ),
    "decoct": ConcreteSpec(
        lambda args, nodes, state: format(_unsigned64(php_int(_at(args, 0))), "o")
    ),
    "decbin": ConcreteSpec(
        lambda args, nodes, state: format(_unsigned64(php_int(_at(args, 0))), "b")
    ),
    "bin2hex": ConcreteSpec(
        lambda args, nodes, state: "".join(
            f"{ord(char) & 0xFF:02x}" for char in _str_at(args, 0)
        ),
        "whole",
    ),
    "urlencode": ConcreteSpec(
        lambda args, nodes, state: php_urlencode(_str_at(args, 0)), "whole"
    ),
    "rawurlencode": ConcreteSpec(
        lambda args, nodes, state: php_rawurlencode(_str_at(args, 0)), "whole"
    ),
    "base64_encode": ConcreteSpec(
        lambda args, nodes, state: base64.b64encode(_latin1(_str_at(args, 0))).decode(
            "ascii"
        ),
        "whole",
    ),
    "chr": ConcreteSpec(lambda args, nodes, state: chr(php_int(_at(args, 0)) % 256)),
    "date": ConcreteSpec(
        lambda args, nodes, state: php_date(
            _str_at(args, 0),
            php_int(_at(args, 1)) if len(args) > 1 else state.clock,
        )
    ),
    "strftime": ConcreteSpec(
        lambda args, nodes, state: _time.strftime(
            _str_at(args, 0),
            _time.gmtime(php_int(_at(args, 1)) if len(args) > 1 else state.clock),
        )
    ),
    "gmdate": ConcreteSpec(
        lambda args, nodes, state: php_date(
            _str_at(args, 0),
            php_int(_at(args, 1)) if len(args) > 1 else state.clock,
        )
    ),
    # expanding / decoding (Σ* models: whole-result taint)
    "urldecode": ConcreteSpec(
        lambda args, nodes, state: php_urldecode(_str_at(args, 0)), "whole"
    ),
    "rawurldecode": ConcreteSpec(
        lambda args, nodes, state: php_rawurldecode(_str_at(args, 0)), "whole"
    ),
    "base64_decode": ConcreteSpec(
        lambda args, nodes, state: php_base64_decode(_str_at(args, 0)), "whole"
    ),
    "utf8_encode": ConcreteSpec(
        lambda args, nodes, state: php_utf8_encode(_str_at(args, 0)), "whole"
    ),
    "utf8_decode": ConcreteSpec(
        lambda args, nodes, state: php_utf8_decode(_str_at(args, 0)), "whole"
    ),
    "convert_uuencode": ConcreteSpec(
        lambda args, nodes, state: php_convert_uuencode(_str_at(args, 0)), "whole"
    ),
    "serialize": ConcreteSpec(
        lambda args, nodes, state: php_serialize(_at(args, 0)), "whole"
    ),
    "unserialize": ConcreteSpec(
        lambda args, nodes, state: php_unserialize(_str_at(args, 0)), "whole"
    ),
    "gzcompress": ConcreteSpec(
        lambda args, nodes, state: zlib.compress(_latin1(_str_at(args, 0))).decode(
            "latin-1"
        ),
        "whole",
    ),
    "gzuncompress": ConcreteSpec(
        lambda args, nodes, state: php_gzuncompress(_str_at(args, 0)), "whole"
    ),
    "strval": ConcreteSpec(lambda args, nodes, state: _str_at(args, 0), "interp"),
    # misc string
    "basename": ConcreteSpec(
        lambda args, nodes, state: php_basename(
            _str_at(args, 0), _str_at(args, 1) if len(args) > 1 else ""
        ),
        "interp",
    ),
    "dirname": ConcreteSpec(
        lambda args, nodes, state: php_dirname(_str_at(args, 0)), "interp"
    ),
    "pathinfo": ConcreteSpec(
        lambda args, nodes, state: php_pathinfo(_str_at(args, 0)), "interp"
    ),
    "strstr": ConcreteSpec(
        lambda args, nodes, state: php_strstr(
            _str_at(args, 0),
            _str_at(args, 1),
            php_bool(_at(args, 2)) if len(args) > 2 else False,
        ),
        "interp",
    ),
    "stristr": ConcreteSpec(
        lambda args, nodes, state: php_stristr(_str_at(args, 0), _str_at(args, 1)),
        "interp",
    ),
    "strrchr": ConcreteSpec(
        lambda args, nodes, state: php_strrchr(_str_at(args, 0), _str_at(args, 1)),
        "interp",
    ),
    "strchr": ConcreteSpec(
        lambda args, nodes, state: php_strstr(_str_at(args, 0), _str_at(args, 1)),
        "interp",
    ),
    "get_magic_quotes_gpc": ConcreteSpec(lambda args, nodes, state: 0),
    "gettype": ConcreteSpec(lambda args, nodes, state: php_gettype(_at(args, 0))),
    "php_uname": ConcreteSpec(lambda args, nodes, state: "Linux"),
    "phpversion": ConcreteSpec(lambda args, nodes, state: "5.4.45"),
    # predicates — no string model (analysis refines branches instead),
    # but the interpreter needs their truth values, and those must come
    # from the same languages the refinement uses
    "preg_match": ConcreteSpec(
        lambda args, nodes, state: php_preg_match(_str_at(args, 0), _str_at(args, 1))
    ),
    "preg_match_all": ConcreteSpec(
        lambda args, nodes, state: php_preg_match(_str_at(args, 0), _str_at(args, 1))
    ),
    "ereg": ConcreteSpec(
        lambda args, nodes, state: php_ereg(_str_at(args, 0), _str_at(args, 1))
    ),
    "eregi": ConcreteSpec(
        lambda args, nodes, state: php_ereg(
            _str_at(args, 0), _str_at(args, 1), ignore_case=True
        )
    ),
    "is_numeric": ConcreteSpec(
        lambda args, nodes, state: php_predicate("is_numeric", _at(args, 0))
    ),
    "ctype_digit": ConcreteSpec(
        lambda args, nodes, state: php_predicate("ctype_digit", _at(args, 0))
    ),
    "ctype_alnum": ConcreteSpec(
        lambda args, nodes, state: php_predicate("ctype_alnum", _at(args, 0))
    ),
    "ctype_alpha": ConcreteSpec(
        lambda args, nodes, state: php_predicate("ctype_alpha", _at(args, 0))
    ),
    "ctype_xdigit": ConcreteSpec(
        lambda args, nodes, state: php_predicate("ctype_xdigit", _at(args, 0))
    ),
    "is_int": ConcreteSpec(
        lambda args, nodes, state: php_predicate("is_int", _at(args, 0))
    ),
    "is_integer": ConcreteSpec(
        lambda args, nodes, state: php_predicate("is_integer", _at(args, 0))
    ),
    "in_array": ConcreteSpec(
        lambda args, nodes, state: php_in_array(_at(args, 0), _at(args, 1))
    ),
}


def concrete_call(name: str, args: list, nodes: list, state: ConcreteState):
    """Evaluate builtin ``name`` concretely; ``KeyError`` if unmodeled.

    ``NO_EFFECT`` names return ``""`` to mirror ``model_call``'s
    ``literal("")`` — a deliberate subset semantics (``print`` really
    returns 1; our generator never uses it in value position)."""
    if name in NO_EFFECT:
        return ""
    return CONCRETE[name].fn(args, nodes, state)
