"""AST node definitions for the PHP subset.

The subset covers what the paper's analysis (and its evaluation corpus)
exercises: assignments and compound assignments, string concatenation
and double-quoted interpolation, arrays, superglobals, user functions,
classes-lite (method calls like ``$DB->query(...)``), the full statement
repertoire (``if``/``while``/``do``/``for``/``foreach``/``switch``),
``include``/``require`` (including *dynamic* includes), ``echo``,
``exit``, ``isset``/``empty``, ternaries, and error suppression.

Nodes are plain dataclasses; every node records its source ``line`` for
bug reports (the paper's future-work item 3 — we implement it).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Node:
    line: int = field(default=0, kw_only=True)
    #: byte span ``(start, end)`` of the node's source text in its file,
    #: or ``None`` when no faithful span exists (synthesized nodes,
    #: heredoc bodies, constant-folded values).  Spans are what lets the
    #: remediation engine splice patches with byte precision.
    span: tuple[int, int] | None = field(default=None, kw_only=True)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class Literal(Expr):
    """A scalar constant: string, int, float, bool, or null."""

    value: str | int | float | bool | None = None


@dataclass
class Var(Expr):
    name: str = ""


@dataclass
class ArrayDim(Expr):
    """``$base[index]``; ``index`` is None for ``$base[] = …`` pushes."""

    base: Expr = None
    index: Expr | None = None


@dataclass
class Prop(Expr):
    """``$obj->name``."""

    base: Expr = None
    name: str = ""


@dataclass
class Interp(Expr):
    """A double-quoted string: literal chunks interleaved with exprs."""

    parts: list[Expr] = field(default_factory=list)


@dataclass
class BinOp(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class UnaryOp(Expr):
    op: str = ""
    operand: Expr = None


@dataclass
class Assign(Expr):
    """``target op= value``; plain assignment has ``op == "="``."""

    target: Expr = None
    op: str = "="
    value: Expr = None


@dataclass
class Ternary(Expr):
    condition: Expr = None
    if_true: Expr | None = None  # None for the `?:` short form
    if_false: Expr = None


@dataclass
class Call(Expr):
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class MethodCall(Expr):
    obj: Expr = None
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class StaticCall(Expr):
    class_name: str = ""
    name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class New(Expr):
    class_name: str = ""
    args: list[Expr] = field(default_factory=list)


@dataclass
class ArrayLit(Expr):
    """``array(k => v, …)`` / ``[v, …]``; pairs have key None when absent."""

    items: list[tuple[Expr | None, Expr]] = field(default_factory=list)


@dataclass
class IssetExpr(Expr):
    targets: list[Expr] = field(default_factory=list)


@dataclass
class EmptyExpr(Expr):
    target: Expr = None


@dataclass
class Cast(Expr):
    kind: str = ""  # "int", "string", "bool", "float", "array"
    operand: Expr = None


@dataclass
class Suppress(Expr):
    """``@expr`` — error suppression (transparent to the analysis)."""

    operand: Expr = None


@dataclass
class ConstFetch(Expr):
    """A bare identifier used as a constant (or define()d constant)."""

    name: str = ""


@dataclass
class VarVar(Expr):
    """A variable-variable: ``$$name`` or ``${expr}``.

    The analysis cannot track which variable this reads or writes, so
    the soundness audit classifies every occurrence as *escaped*.
    """

    name_expr: Expr = None


@dataclass
class DynCall(Expr):
    """A call through a variable: ``$f(...)``, ``$handlers[$op](...)``.

    The callee is not statically resolved — an audit *escape*.
    """

    target: Expr = None
    args: list[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Block(Stmt):
    statements: list[Stmt] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class Echo(Stmt):
    values: list[Expr] = field(default_factory=list)


@dataclass
class InlineHtml(Stmt):
    text: str = ""


@dataclass
class If(Stmt):
    condition: Expr = None
    then: Block = None
    elifs: list[tuple[Expr, Block]] = field(default_factory=list)
    orelse: Block | None = None


@dataclass
class While(Stmt):
    condition: Expr = None
    body: Block = None


@dataclass
class DoWhile(Stmt):
    body: Block = None
    condition: Expr = None


@dataclass
class For(Stmt):
    init: list[Expr] = field(default_factory=list)
    condition: Expr | None = None
    step: list[Expr] = field(default_factory=list)
    body: Block = None


@dataclass
class Foreach(Stmt):
    subject: Expr = None
    key_var: Expr | None = None
    value_var: Expr = None
    body: Block = None


@dataclass
class Switch(Stmt):
    subject: Expr = None
    cases: list[tuple[Expr | None, Block]] = field(default_factory=list)  # None = default


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Expr | None = None


@dataclass
class ExitStmt(Stmt):
    value: Expr | None = None


@dataclass
class GlobalDecl(Stmt):
    names: list[str] = field(default_factory=list)


@dataclass
class Include(Stmt):
    """``include``/``require`` (and the ``_once`` forms)."""

    path: Expr = None
    once: bool = False
    required: bool = False


@dataclass
class Param(Node):
    name: str = ""
    default: Expr | None = None
    by_reference: bool = False


@dataclass
class FunctionDef(Stmt):
    name: str = ""
    params: list[Param] = field(default_factory=list)
    body: Block = None


@dataclass
class ClassDef(Stmt):
    name: str = ""
    parent: str | None = None
    methods: list[FunctionDef] = field(default_factory=list)
    properties: list[tuple[str, Expr | None]] = field(default_factory=list)


@dataclass
class File(Node):
    """A parsed PHP file: the top-level statement list."""

    path: str = ""
    body: Block = None


def walk(node: Node):
    """Yield ``node`` and all descendants (generic, field-driven)."""
    yield node
    for value in vars(node).values():
        if isinstance(value, Node):
            yield from walk(value)
        elif isinstance(value, list):
            for item in value:
                if isinstance(item, Node):
                    yield from walk(item)
                elif isinstance(item, tuple):
                    for member in item:
                        if isinstance(member, Node):
                            yield from walk(member)
