"""A hand-written lexer for the PHP subset.

Handles the mixed HTML/PHP structure of real pages (text outside
``<?php … ?>`` becomes ``INLINE_HTML`` tokens), variables, identifiers,
keywords (case-insensitive), numbers, single-quoted strings (literal),
double-quoted strings (kept raw — the parser expands interpolation),
line and block comments, and PHP's operator zoo.
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = frozenset(
    """
    if else elseif while do for foreach as function return global echo
    print include include_once require require_once isset empty exit die
    unset true false null new class extends switch case default break
    continue and or xor not array list static public private protected
    var const endif endwhile endfor endforeach endswitch
    """.split()
)

#: longest first, so the scanner can try them in order
OPERATORS = (
    "===", "!==", "<<<", "<=>",
    "==", "!=", "<>", "<=", ">=", "&&", "||", "++", "--", "+=", "-=",
    "*=", "/=", "%=", ".=", "->", "=>", "::", "<<", ">>",
    "+", "-", "*", "/", "%", ".", "=", "<", ">", "!", "?", ":", ";",
    ",", "(", ")", "{", "}", "[", "]", "@", "&", "|", "^", "~", "$",
)


class PhpLexError(ValueError):
    """Raised on malformed PHP source."""


@dataclass(frozen=True)
class Token:
    kind: str  # INLINE_HTML, VARIABLE, IDENT, KEYWORD, NUMBER, SQ_STRING, DQ_STRING, OP, EOF
    value: str
    line: int
    #: byte span of the token's source text, ``[offset, end)`` in the
    #: file the lexer ran over; ``-1`` when no faithful span exists
    #: (synthetic tokens, heredoc bodies whose value is normalized)
    offset: int = -1
    end: int = -1


IDENT_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
IDENT_CHARS = IDENT_START | frozenset("0123456789")
DIGITS = frozenset("0123456789")


class Lexer:
    def __init__(self, source: str, path: str = "<string>") -> None:
        self.source = source
        self.path = path
        self.pos = 0
        self.line = 1
        self.tokens: list[Token] = []

    def error(self, message: str) -> PhpLexError:
        return PhpLexError(f"{self.path}:{self.line}: {message}")

    def run(self) -> list[Token]:
        while self.pos < len(self.source):
            self._lex_html()
            if self.pos < len(self.source):
                self._lex_php()
        n = len(self.source)
        self.tokens.append(Token("EOF", "", self.line, n, n))
        return self.tokens

    # -- modes ---------------------------------------------------------------

    def _lex_html(self) -> None:
        start = self.pos
        open_tag = self.source.find("<?php", self.pos)
        short_tag = self.source.find("<?=", self.pos)
        if open_tag == -1 and short_tag == -1:
            end = len(self.source)
        elif open_tag == -1:
            end = short_tag
        elif short_tag == -1:
            end = open_tag
        else:
            end = min(open_tag, short_tag)
        if end > start:
            text = self.source[start:end]
            self.tokens.append(Token("INLINE_HTML", text, self.line, start, end))
            self.line += text.count("\n")
        self.pos = end
        if self.pos < len(self.source):
            if self.source.startswith("<?php", self.pos):
                self.pos += 5
            else:  # <?=  → echo shorthand
                self.pos += 3
                self.tokens.append(Token("KEYWORD", "echo", self.line))

    def _lex_php(self) -> None:
        source, n = self.source, len(self.source)
        while self.pos < n:
            char = source[self.pos]
            if char == "\n":
                self.line += 1
                self.pos += 1
                continue
            if char in " \t\r":
                self.pos += 1
                continue
            if source.startswith("?>", self.pos):
                self.pos += 2
                # a statement terminator, per PHP semantics
                self.tokens.append(Token("OP", ";", self.line))
                return
            if source.startswith("//", self.pos) or char == "#":
                end = source.find("\n", self.pos)
                close = source.find("?>", self.pos)
                if close != -1 and (end == -1 or close < end):
                    self.pos = close
                    continue
                self.pos = n if end == -1 else end
                continue
            if source.startswith("/*", self.pos):
                end = source.find("*/", self.pos + 2)
                if end == -1:
                    raise self.error("unterminated block comment")
                self.line += source.count("\n", self.pos, end)
                self.pos = end + 2
                continue
            if char == "$" and self.pos + 1 < n and source[self.pos + 1] in IDENT_START:
                start = self.pos + 1
                end = start
                while end < n and source[end] in IDENT_CHARS:
                    end += 1
                self.tokens.append(
                    Token("VARIABLE", source[start:end], self.line,
                          self.pos, end)
                )
                self.pos = end
                continue
            if char in IDENT_START:
                start = self.pos
                end = start
                while end < n and source[end] in IDENT_CHARS:
                    end += 1
                word = source[start:end]
                lowered = word.lower()
                kind = "KEYWORD" if lowered in KEYWORDS else "IDENT"
                value = lowered if kind == "KEYWORD" else word
                self.tokens.append(Token(kind, value, self.line, start, end))
                self.pos = end
                continue
            if char in DIGITS or (
                char == "." and self.pos + 1 < n and source[self.pos + 1] in DIGITS
            ):
                self._lex_number()
                continue
            if char == "'":
                self._lex_single_quoted()
                continue
            if char == '"':
                self._lex_double_quoted()
                continue
            if source.startswith("<<<", self.pos):
                self._lex_heredoc()
                continue
            for op in OPERATORS:
                if source.startswith(op, self.pos):
                    self.tokens.append(
                        Token("OP", op, self.line, self.pos, self.pos + len(op))
                    )
                    self.pos += len(op)
                    break
            else:
                raise self.error(f"unexpected character {char!r}")

    # -- literal scanners -----------------------------------------------------

    def _lex_number(self) -> None:
        source, n = self.source, len(self.source)
        start = self.pos
        if source.startswith(("0x", "0X"), self.pos):
            end = self.pos + 2
            while end < n and source[end] in "0123456789abcdefABCDEF":
                end += 1
        else:
            end = self.pos
            while end < n and source[end] in DIGITS:
                end += 1
            if end < n and source[end] == ".":
                end += 1
                while end < n and source[end] in DIGITS:
                    end += 1
        self.tokens.append(Token("NUMBER", source[start:end], self.line, start, end))
        self.pos = end

    def _lex_single_quoted(self) -> None:
        source, n = self.source, len(self.source)
        i = self.pos + 1
        chunks: list[str] = []
        while i < n:
            char = source[i]
            if char == "\\" and i + 1 < n and source[i + 1] in "'\\":
                chunks.append(source[i + 1])
                i += 2
                continue
            if char == "'":
                text = "".join(chunks)
                self.tokens.append(
                    Token("SQ_STRING", text, self.line, self.pos, i + 1)
                )
                self.line += source.count("\n", self.pos, i)
                self.pos = i + 1
                return
            chunks.append(char)
            i += 1
        raise self.error("unterminated single-quoted string")

    def _lex_double_quoted(self) -> None:
        """Scan to the closing quote; interpolation is expanded later, so
        the token value is the *raw* body (escapes intact)."""
        source, n = self.source, len(self.source)
        i = self.pos + 1
        depth = 0  # {$…} nesting
        while i < n:
            char = source[i]
            if char == "\\" and i + 1 < n:
                i += 2
                continue
            if char == "{" and i + 1 < n and source[i + 1] == "$":
                depth += 1
            elif char == "}" and depth:
                depth -= 1
            elif char == '"' and depth == 0:
                body = source[self.pos + 1 : i]
                self.tokens.append(
                    Token("DQ_STRING", body, self.line, self.pos, i + 1)
                )
                self.line += source.count("\n", self.pos, i)
                self.pos = i + 1
                return
            i += 1
        raise self.error("unterminated double-quoted string")


    def _lex_heredoc(self) -> None:
        """``<<<TAG … TAG;`` — heredoc (interpolating) or, with a quoted
        tag (``<<<'TAG'``), nowdoc (literal)."""
        source, n = self.source, len(self.source)
        i = self.pos + 3
        while i < n and source[i] in " \t":
            i += 1
        nowdoc = i < n and source[i] == "'"
        quoted = i < n and source[i] in "'\""
        if quoted:
            i += 1
        start = i
        while i < n and source[i] in IDENT_CHARS:
            i += 1
        tag = source[start:i]
        if not tag:
            raise self.error("missing heredoc tag")
        if quoted:
            if i >= n or source[i] not in "'\"":
                raise self.error("unterminated heredoc tag quote")
            i += 1
        if i >= n or source[i] != "\n":
            # tolerate \r\n
            if source.startswith("\r\n", i):
                i += 1
            else:
                raise self.error("heredoc tag must end the line")
        i += 1
        body_start = i
        # find a line that starts with the tag (possibly followed by ;)
        while i < n:
            line_end = source.find("\n", i)
            if line_end == -1:
                line_end = n
            line = source[i:line_end].rstrip("\r")
            stripped = line.rstrip(";").strip()
            if stripped == tag and line.strip().startswith(tag):
                body = source[body_start : i - 1 if i > body_start else i]
                kind = "SQ_STRING" if nowdoc else "DQ_STRING"
                if nowdoc:
                    self.tokens.append(Token(kind, body, self.line))
                else:
                    # escape raw backslash-quote sequences are heredoc-literal
                    self.tokens.append(Token(kind, body.replace('"', '\\"'), self.line))
                self.line += source.count("\n", self.pos, i)
                self.pos = i + len(line.split(";")[0].rstrip())
                # keep the trailing ; for the parser
                return
            i = line_end + 1
        raise self.error(f"unterminated heredoc {tag!r}")


def lex(source: str, path: str = "<string>") -> list[Token]:
    """Tokenize PHP ``source`` (mixed HTML + PHP)."""
    return Lexer(source, path).run()
