"""Construct inventory for the soundness audit.

The paper's soundness claim (Theorem 3.4, "no report ⇒ no SQLCIV") is
*relative* to the constructs the string-taint analysis models.  This
walker makes that relativity explicit: it inventories every call,
include, and dynamic-language construct in a parsed file and classifies
each one as

* ``modeled``  — handled exactly (or by a dedicated sound model): the
  analysis's verdict is trustworthy here;
* ``widened``  — over-approximated but *sound*: the construct's model is
  a charset-closure/Σ* widening, so "verified" stays meaningful but
  extra false positives are possible;
* ``escaped``  — a soundness hole: the construct can change program
  state (or execute code) in ways the analysis does not see at all —
  ``eval``, variable-variables, dynamic calls, ``extract``, unresolved
  dynamic includes, calls to unmodeled functions, parse-error regions.

The inventory is purely syntactic; the audit pass
(:mod:`repro.analysis.audit`) correlates it with the run-time trail
(which builtins actually widened, which includes the
:class:`~repro.php.includes.IncludeResolver` resolved) to produce the
final diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis import sources

from . import ast
from .builtins import (
    BUILTINS,
    NO_EFFECT,
    PREDICATE_FUNCTIONS,
    WIDENING_BUILTINS,
    literal_str,
    predicate_language,
)

#: the three audit classifications
MODELED = "modeled"
WIDENED = "widened"
ESCAPED = "escaped"


@dataclass(frozen=True)
class Feature:
    """One occurrence of an inventoried construct."""

    kind: str            # "eval", "variable-variable", "dynamic-call",
                         # "dynamic-include", "include", "preg-replace-eval",
                         # "extract", "unknown-builtin", "widened-builtin",
                         # "builtin", "user-function", "sink", "source"
    classification: str  # MODELED | WIDENED | ESCAPED
    file: str
    line: int
    name: str = ""       # function/builtin name, when there is one
    detail: str = ""


#: code-evaluating constructs: the evaluated string is a whole unanalyzed
#: program — the definition of a soundness hole
EVAL_FUNCTIONS = frozenset({"eval", "create_function", "assert"})

#: callable-dispatch builtins whose callee the analysis never resolves
DYNAMIC_CALL_FUNCTIONS = frozenset(
    """
    call_user_func call_user_func_array call_user_method
    call_user_method_array forward_static_call forward_static_call_array
    array_map array_walk array_filter usort uasort uksort
    preg_replace_callback
    """.split()
)

#: builtins that conjure variables the analysis cannot name
SCOPE_ESCAPE_FUNCTIONS = frozenset(
    {"extract", "parse_str", "import_request_variables"}
)

#: names the interpreter handles specially (not via the builtin registry)
_INTERPRETER_SPECIALS = frozenset(
    {"define", "constant", "defined", "exit"}
)

_INCLUDE_NAMES = frozenset(
    {"include", "include_once", "require", "require_once"}
)


def _pattern_flags(pattern_text: str) -> str:
    """The trailing flags of a delimited PHP regex ('/x/ie' → 'ie')."""
    if len(pattern_text) < 2:
        return ""
    open_delim = pattern_text[0]
    close_delim = {"(": ")", "[": "]", "{": "}", "<": ">"}.get(
        open_delim, open_delim
    )
    end = pattern_text.rfind(close_delim)
    if end <= 0:
        return ""
    return pattern_text[end + 1 :]


def _has_eval_modifier(pattern_node: ast.Expr | None) -> bool:
    """True if a literal ``preg_replace`` pattern carries the ``/e``
    modifier (PHP < 7: the *replacement* is evaluated as code)."""
    candidates: list[ast.Expr | None]
    if isinstance(pattern_node, ast.ArrayLit):
        candidates = [value for _, value in pattern_node.items]
    else:
        candidates = [pattern_node]
    for node in candidates:
        text = literal_str(node)
        if text is not None and "e" in _pattern_flags(text):
            return True
    return False


def _classify_call(
    call: ast.Call, file: str, known_functions: frozenset[str] | set[str]
) -> Feature:
    name = call.name
    make = lambda kind, classification, detail="": Feature(  # noqa: E731
        kind=kind,
        classification=classification,
        file=file,
        line=call.line,
        name=name,
        detail=detail,
    )
    if name in EVAL_FUNCTIONS:
        return make("eval", ESCAPED, "evaluated code is not analyzed")
    if name in DYNAMIC_CALL_FUNCTIONS:
        return make("dynamic-call", ESCAPED, "callee not statically resolved")
    if name in SCOPE_ESCAPE_FUNCTIONS:
        return make(
            "extract", ESCAPED, "writes variables the analysis cannot name"
        )
    if name in ("preg_replace", "preg_filter") and _has_eval_modifier(
        call.args[0] if call.args else None
    ):
        return make(
            "preg-replace-eval", ESCAPED, "/e evaluates the replacement as code"
        )
    if name in _INCLUDE_NAMES:
        if call.args and isinstance(call.args[0], ast.Literal):
            return make("include", MODELED)
        return make(
            "dynamic-include", ESCAPED, "include path is not a literal"
        )
    if name in known_functions:
        return make("user-function", MODELED)
    if sources.query_argument_index(name) is not None:
        return make("sink", MODELED)
    if sources.is_fetch_function(name) is not None:
        return make("source", MODELED)
    if name in PREDICATE_FUNCTIONS:
        if predicate_language(call) is not None:
            return make("predicate", MODELED)
        return make(
            "predicate",
            WIDENED,
            "condition not statically refinable; both branches kept",
        )
    if name in _INTERPRETER_SPECIALS or name in NO_EFFECT:
        return make("builtin", MODELED)
    if name in WIDENING_BUILTINS:
        return make(
            "widened-builtin", WIDENED, "modeled by charset-closure widening"
        )
    if name in BUILTINS:
        return make("builtin", MODELED)
    return make(
        "unknown-builtin",
        ESCAPED,
        "no model: return over-approximated, side effects invisible",
    )


def inventory_file(
    tree: ast.File, known_functions: frozenset[str] | set[str] = frozenset()
) -> list[Feature]:
    """Every inventoried construct in one parsed file.

    ``known_functions`` holds the (lower-cased) names of user-defined
    functions anywhere in the include closure, so calls to them are not
    misreported as unmodeled builtins.
    """
    file = tree.path
    feats: list[Feature] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            feats.append(_classify_call(node, file, known_functions))
        elif isinstance(node, ast.VarVar):
            feats.append(
                Feature(
                    kind="variable-variable",
                    classification=ESCAPED,
                    file=file,
                    line=node.line,
                    detail="target variable unknown: reads and writes untracked",
                )
            )
        elif isinstance(node, ast.DynCall):
            feats.append(
                Feature(
                    kind="dynamic-call",
                    classification=ESCAPED,
                    file=file,
                    line=node.line,
                    detail="call through a variable: callee unknown",
                )
            )
        elif isinstance(node, ast.MethodCall) and node.name.startswith("$"):
            feats.append(
                Feature(
                    kind="dynamic-call",
                    classification=ESCAPED,
                    file=file,
                    line=node.line,
                    name=node.name,
                    detail="dynamic method name: callee unknown",
                )
            )
        elif isinstance(node, ast.Include):
            if isinstance(node.path, ast.Literal):
                feats.append(
                    Feature(
                        kind="include",
                        classification=MODELED,
                        file=file,
                        line=node.line,
                    )
                )
            else:
                # provisional: the audit pass downgrades this to WIDENED
                # when the IncludeResolver found ≥1 candidate file
                feats.append(
                    Feature(
                        kind="dynamic-include",
                        classification=ESCAPED,
                        file=file,
                        line=node.line,
                        detail="include path computed at run time",
                    )
                )
    return feats


def escapes(feats: list[Feature]) -> list[Feature]:
    return [f for f in feats if f.classification == ESCAPED]


def widenings(feats: list[Feature]) -> list[Feature]:
    return [f for f in feats if f.classification == WIDENED]
