"""Dynamic include resolution (paper §4).

When the analyzer reaches ``include("lan_" . $choice . ".php")`` it must
know which files can be included.  The paper's approach, reproduced
here: treat the project's file-and-directory layout as part of the
specification — build the (finite, regular) language of project-relative
paths, intersect it with the language of the include argument, and
analyze every file in the result.

The intersection is evaluated by membership tests of each candidate path
string against the include-argument grammar, which is equivalent to the
regular-language intersection for a finite path language.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.lang.grammar import Grammar, Nonterminal
from repro.obs.metrics import PERF


def _prefilter_enabled() -> bool:
    return os.environ.get("REPRO_INCLUDE_PREFILTER", "1") != "0"


class IncludeResolver:
    def __init__(self, project_root: str | Path) -> None:
        self.root = Path(project_root)
        self._files: list[Path] = []
        if self.root.is_dir():
            for dirpath, _dirnames, filenames in os.walk(self.root):
                for filename in filenames:
                    if filename.endswith((".php", ".inc", ".html", ".tpl")):
                        self._files.append(Path(dirpath) / filename)
        self._files.sort()

    def project_files(self) -> list[Path]:
        return list(self._files)

    def candidate_names(self, current_dir: Path) -> dict[str, Path]:
        """Every name a project file could be referred to by from
        ``current_dir``: project-relative, current-dir-relative, bare."""
        names: dict[str, Path] = {}
        for file in self._files:
            rel_root = file.relative_to(self.root).as_posix()
            names.setdefault(rel_root, file)
            names.setdefault("./" + rel_root, file)
            try:
                rel_cur = file.relative_to(current_dir).as_posix()
                names.setdefault(rel_cur, file)
                names.setdefault("./" + rel_cur, file)
            except ValueError:
                pass
        return names

    def resolve(
        self,
        grammar: Grammar,
        path_nt: Nonterminal,
        current_dir: str | Path,
        limit: int = 64,
        audit=None,
        site: tuple[str, int] | None = None,
        literal: bool = False,
        deps: set[str] | None = None,
    ) -> list[Path]:
        """Files whose names the include-argument grammar can generate.

        ``audit``/``site``/``literal`` are the soundness-audit hooks: when
        an :class:`~repro.analysis.audit.AuditTrail` is given, the outcome
        of this resolution (how many candidate files the include-argument
        language matched, and whether the argument was a source literal)
        is recorded against the include site so the audit pass can tell a
        *widened* dynamic include (resolved to ≥1 project file, every
        alternative analyzed) from an *escaped* one (resolved to nothing —
        the included code is invisible to the analysis).

        ``deps`` is the caller's file-dependency accumulator (the basis of
        the analysis server's incremental invalidation): every resolved
        file is added to it, even files the interpreter then skips for
        ``include_once``/cycle reasons — a skipped alternative is still
        part of the page's specification.
        """
        current = Path(current_dir)
        names = self.candidate_names(current)
        # Fast path: the argument is a finite set of short literals.
        literals = grammar.sample_strings(path_nt, limit=8, max_len=300)
        exact = [names[text] for text in literals if text in names]
        if exact and len(literals) < 8:
            # finite small language fully sampled: that IS the answer
            resolved = sorted(set(exact))
        else:
            scope = grammar.subgrammar(path_nt)
            candidates = names.items()
            if _prefilter_enabled():
                # Sound pruning: every string of the argument language
                # carries the forced affixes, so a candidate without them
                # cannot be generated and the exact test can be skipped.
                summary = scope.affix_summary(path_nt)
                if summary is None:
                    candidates = []
                else:
                    prefix, suffix, min_len = summary
                    candidates = [
                        (text, file)
                        for text, file in candidates
                        if len(text) >= min_len
                        and text.startswith(prefix)
                        and text.endswith(suffix)
                    ]
                PERF.incr(
                    "include.prefilter.pruned", len(names) - len(candidates)
                )
                PERF.incr("include.prefilter.kept", len(candidates))
            matches = {
                file
                for text, file in candidates
                if scope.generates(path_nt, text)
            }
            resolved = sorted(matches)[:limit]
        if audit is not None:
            file, line = site if site is not None else ("", 0)
            audit.record_include(file, line, literal, len(resolved))
        if deps is not None:
            deps.update(str(file) for file in resolved)
        return resolved
