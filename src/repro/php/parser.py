"""Recursive-descent parser for the PHP subset.

Produces the AST of :mod:`repro.php.ast`.  Operator precedence follows
PHP; double-quoted string interpolation is expanded here (the lexer
keeps bodies raw), including the simple ``$var`` / ``$arr[key]`` /
``$obj->prop`` syntax and the complex ``{$expr}`` syntax.
"""

from __future__ import annotations

from . import ast
from .lexer import IDENT_CHARS, IDENT_START, Token, lex


class PhpParseError(ValueError):
    """Raised on source the subset parser cannot handle."""


#: binary operator precedence (higher binds tighter); all left-assoc here
_BINARY_PRECEDENCE = {
    "||": 10,
    "&&": 11,
    "|": 12,
    "^": 13,
    "&": 14,
    "==": 15, "!=": 15, "===": 15, "!==": 15, "<>": 15,
    "<": 16, "<=": 16, ">": 16, ">=": 16, "<=>": 16,
    "<<": 17, ">>": 17,
    "+": 18, "-": 18, ".": 18,
    "*": 19, "/": 19, "%": 19,
}

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", ".="}

_CAST_KINDS = {"int", "integer", "string", "bool", "boolean", "float", "double", "array"}


class Parser:
    def __init__(self, tokens: list[Token], path: str = "<string>") -> None:
        self.tokens = tokens
        self.path = path
        self.pos = 0

    # -- plumbing -------------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def take(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self.pos += 1
        return token

    def at(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        return token.kind == kind and (value is None or token.value == value)

    def at_op(self, *values: str) -> bool:
        token = self.peek()
        return token.kind == "OP" and token.value in values

    def at_keyword(self, *values: str) -> bool:
        token = self.peek()
        return token.kind == "KEYWORD" and token.value in values

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.peek()
        if not self.at(kind, value):
            raise self.error(f"expected {value or kind}, found {token.value!r}")
        return self.take()

    def error(self, message: str) -> PhpParseError:
        return PhpParseError(f"{self.path}:{self.peek().line}: {message}")

    def _spanned(self, expr: ast.Expr, start_index: int) -> ast.Expr:
        """Stamp ``expr`` with the byte span of the tokens consumed since
        ``start_index`` (a saved ``self.pos``).  Inner productions stamp
        first, so a node already carrying a span keeps it."""
        if expr.span is None and self.pos > start_index:
            first = self.tokens[start_index]
            last = self.tokens[self.pos - 1]
            if first.offset >= 0 and last.end >= 0:
                expr.span = (first.offset, last.end)
        return expr

    # -- entry ------------------------------------------------------------------

    def parse_file(self) -> ast.File:
        body = []
        while not self.at("EOF"):
            body.append(self.statement())
        return ast.File(path=self.path, body=ast.Block(statements=body, line=1), line=1)

    # -- statements ----------------------------------------------------------------

    def statement(self) -> ast.Stmt:
        token = self.peek()
        line = token.line
        if token.kind == "INLINE_HTML":
            self.take()
            return ast.InlineHtml(text=token.value, line=line)
        if token.kind == "OP" and token.value == ";":
            self.take()
            return ast.Block(statements=[], line=line)
        if token.kind == "OP" and token.value == "{":
            return self.block()
        if token.kind == "KEYWORD":
            handler = getattr(self, f"_stmt_{token.value}", None)
            if handler is not None:
                return handler()
        expr = self.expression()
        self._end_statement()
        return ast.ExprStmt(expr=expr, line=line)

    def _end_statement(self) -> None:
        if self.at_op(";"):
            self.take()
        elif not (self.at("EOF") or self.at("INLINE_HTML") or self.at_op("}")):
            raise self.error(f"expected ';', found {self.peek().value!r}")

    def block(self) -> ast.Block:
        line = self.expect("OP", "{").line
        statements = []
        while not self.at_op("}"):
            if self.at("EOF"):
                raise self.error("unexpected end of file in block")
            statements.append(self.statement())
        self.take()
        return ast.Block(statements=statements, line=line)

    def _body(self) -> ast.Block:
        """A `{…}` block or a single statement (PHP allows both)."""
        if self.at_op("{"):
            return self.block()
        statement = self.statement()
        return ast.Block(statements=[statement], line=statement.line)

    def _alt_body(self, *stop_keywords: str) -> ast.Block:
        """Alternative-syntax body: ``:`` then statements up to (not
        consuming) one of ``stop_keywords`` (``endif``, ``else``, …)."""
        line = self.expect("OP", ":").line
        statements = []
        while not self.at("KEYWORD") or self.peek().value not in stop_keywords:
            if self.at("EOF"):
                raise self.error(f"expected one of {stop_keywords}")
            statements.append(self.statement())
        return ast.Block(statements=statements, line=line)

    def _stmt_echo(self) -> ast.Stmt:
        line = self.take().line
        values = [self.expression()]
        while self.at_op(","):
            self.take()
            values.append(self.expression())
        self._end_statement()
        return ast.Echo(values=values, line=line)

    _stmt_print = _stmt_echo

    def _stmt_if(self) -> ast.Stmt:
        line = self.take().line
        self.expect("OP", "(")
        condition = self.expression()
        self.expect("OP", ")")
        if self.at_op(":"):
            return self._stmt_if_alternative(line, condition)
        then = self._body()
        elifs = []
        orelse = None
        while self.at_keyword("elseif") or (
            self.at_keyword("else") and self.peek(1).kind == "KEYWORD" and self.peek(1).value == "if"
        ):
            if self.at_keyword("elseif"):
                self.take()
            else:
                self.take()
                self.take()
            self.expect("OP", "(")
            elif_condition = self.expression()
            self.expect("OP", ")")
            elifs.append((elif_condition, self._body()))
        if self.at_keyword("else"):
            self.take()
            orelse = self._body()
        return ast.If(condition=condition, then=then, elifs=elifs, orelse=orelse, line=line)

    def _stmt_if_alternative(self, line: int, condition: ast.Expr) -> ast.Stmt:
        """``if (...): … elseif (...): … else: … endif;``"""
        then = self._alt_body("elseif", "else", "endif")
        elifs = []
        orelse = None
        while self.at_keyword("elseif"):
            self.take()
            self.expect("OP", "(")
            elif_condition = self.expression()
            self.expect("OP", ")")
            elifs.append((elif_condition, self._alt_body("elseif", "else", "endif")))
        if self.at_keyword("else"):
            self.take()
            orelse = self._alt_body("endif")
        self.expect("KEYWORD", "endif")
        self._end_statement()
        return ast.If(condition=condition, then=then, elifs=elifs, orelse=orelse, line=line)

    def _stmt_while(self) -> ast.Stmt:
        line = self.take().line
        self.expect("OP", "(")
        condition = self.expression()
        self.expect("OP", ")")
        if self.at_op(":"):
            body = self._alt_body("endwhile")
            self.expect("KEYWORD", "endwhile")
            self._end_statement()
            return ast.While(condition=condition, body=body, line=line)
        return ast.While(condition=condition, body=self._body(), line=line)

    def _stmt_do(self) -> ast.Stmt:
        line = self.take().line
        body = self._body()
        self.expect("KEYWORD", "while")
        self.expect("OP", "(")
        condition = self.expression()
        self.expect("OP", ")")
        self._end_statement()
        return ast.DoWhile(body=body, condition=condition, line=line)

    def _stmt_for(self) -> ast.Stmt:
        line = self.take().line
        self.expect("OP", "(")
        init = self._expr_list_until(";")
        condition_list = self._expr_list_until(";")
        condition = condition_list[-1] if condition_list else None
        step = self._expr_list_until(")")
        return ast.For(init=init, condition=condition, step=step, body=self._body(), line=line)

    def _expr_list_until(self, closer: str) -> list[ast.Expr]:
        exprs = []
        while not self.at_op(closer):
            exprs.append(self.expression())
            if self.at_op(","):
                self.take()
        self.take()
        return exprs

    def _stmt_foreach(self) -> ast.Stmt:
        line = self.take().line
        self.expect("OP", "(")
        subject = self.expression()
        self.expect("KEYWORD", "as")
        if self.at_op("&"):
            self.take()
        first = self.expression()
        key_var = None
        value_var = first
        if self.at_op("=>"):
            self.take()
            if self.at_op("&"):
                self.take()
            key_var = first
            value_var = self.expression()
        self.expect("OP", ")")
        if self.at_op(":"):
            body = self._alt_body("endforeach")
            self.expect("KEYWORD", "endforeach")
            self._end_statement()
        else:
            body = self._body()
        return ast.Foreach(
            subject=subject, key_var=key_var, value_var=value_var, body=body, line=line
        )

    def _stmt_switch(self) -> ast.Stmt:
        line = self.take().line
        self.expect("OP", "(")
        subject = self.expression()
        self.expect("OP", ")")
        self.expect("OP", "{")
        cases: list[tuple[ast.Expr | None, ast.Block]] = []
        while not self.at_op("}"):
            if self.at_keyword("case"):
                self.take()
                label = self.expression()
            elif self.at_keyword("default"):
                self.take()
                label = None
            else:
                raise self.error("expected case/default in switch")
            if self.at_op(":") or self.at_op(";"):
                self.take()
            statements = []
            while not (self.at_keyword("case") or self.at_keyword("default") or self.at_op("}")):
                statements.append(self.statement())
            cases.append((label, ast.Block(statements=statements, line=line)))
        self.take()
        return ast.Switch(subject=subject, cases=cases, line=line)

    def _stmt_break(self) -> ast.Stmt:
        line = self.take().line
        if self.at("NUMBER"):
            self.take()  # break N: treated as plain break
        self._end_statement()
        return ast.Break(line=line)

    def _stmt_continue(self) -> ast.Stmt:
        line = self.take().line
        if self.at("NUMBER"):
            self.take()
        self._end_statement()
        return ast.Continue(line=line)

    def _stmt_return(self) -> ast.Stmt:
        line = self.take().line
        value = None
        if not (self.at_op(";") or self.at("EOF") or self.at_op("}")):
            value = self.expression()
        self._end_statement()
        return ast.Return(value=value, line=line)

    def _stmt_global(self) -> ast.Stmt:
        line = self.take().line
        names = [self.expect("VARIABLE").value]
        while self.at_op(","):
            self.take()
            names.append(self.expect("VARIABLE").value)
        self._end_statement()
        return ast.GlobalDecl(names=names, line=line)

    def _stmt_include(self, once: bool = False, required: bool = False) -> ast.Stmt:
        line = self.take().line
        parenthesized = self.at_op("(")
        if parenthesized:
            self.take()
        path = self.expression()
        if parenthesized:
            self.expect("OP", ")")
        self._end_statement()
        return ast.Include(path=path, once=once, required=required, line=line)

    def _stmt_include_once(self) -> ast.Stmt:
        return self._stmt_include(once=True)

    def _stmt_require(self) -> ast.Stmt:
        return self._stmt_include(required=True)

    def _stmt_require_once(self) -> ast.Stmt:
        return self._stmt_include(once=True, required=True)

    def _stmt_function(self) -> ast.Stmt:
        line = self.take().line
        if self.at_op("&"):
            self.take()
        name = self.expect("IDENT").value
        params = self._params()
        body = self.block()
        return ast.FunctionDef(name=name, params=params, body=body, line=line)

    def _params(self) -> list[ast.Param]:
        self.expect("OP", "(")
        params = []
        while not self.at_op(")"):
            by_reference = False
            if self.at_op("&"):
                self.take()
                by_reference = True
            if self.at("IDENT"):  # type hint
                self.take()
            name = self.expect("VARIABLE").value
            default = None
            if self.at_op("="):
                self.take()
                default = self.expression()
            params.append(ast.Param(name=name, default=default, by_reference=by_reference))
            if self.at_op(","):
                self.take()
        self.take()
        return params

    def _stmt_class(self) -> ast.Stmt:
        line = self.take().line
        name = self.expect("IDENT").value
        parent = None
        if self.at_keyword("extends"):
            self.take()
            parent = self.expect("IDENT").value
        self.expect("OP", "{")
        methods: list[ast.FunctionDef] = []
        properties: list[tuple[str, ast.Expr | None]] = []
        while not self.at_op("}"):
            while self.at_keyword("public", "private", "protected", "static", "var"):
                self.take()
            if self.at_keyword("function"):
                method = self._stmt_function()
                methods.append(method)
            elif self.at("VARIABLE"):
                prop_name = self.take().value
                default = None
                if self.at_op("="):
                    self.take()
                    default = self.expression()
                self._end_statement()
                properties.append((prop_name, default))
            elif self.at_keyword("const"):
                self.take()
                self.expect("IDENT")
                self.expect("OP", "=")
                self.expression()
                self._end_statement()
            else:
                raise self.error(f"unexpected {self.peek().value!r} in class body")
        self.take()
        return ast.ClassDef(name=name, parent=parent, methods=methods, properties=properties, line=line)

    def _stmt_static(self) -> ast.Stmt:
        """`static $x = init;` inside a function — treated as assignment."""
        line = self.take().line
        name = self.expect("VARIABLE").value
        value: ast.Expr = ast.Literal(value=None, line=line)
        if self.at_op("="):
            self.take()
            value = self.expression()
        self._end_statement()
        return ast.ExprStmt(
            expr=ast.Assign(target=ast.Var(name=name, line=line), op="=", value=value, line=line),
            line=line,
        )

    def _stmt_unset(self) -> ast.Stmt:
        line = self.take().line
        self.expect("OP", "(")
        targets = self._expr_list_until(")")
        self._end_statement()
        return ast.ExprStmt(expr=ast.Call(name="unset", args=targets, line=line), line=line)

    # -- expressions -----------------------------------------------------------------

    def expression(self) -> ast.Expr:
        return self._keyword_logic()

    def _keyword_logic(self) -> ast.Expr:
        left = self._assignment()
        while self.at_keyword("and", "or", "xor"):
            op_token = self.take()
            op = {"and": "&&", "or": "||", "xor": "^"}[op_token.value]
            right = self._assignment()
            left = ast.BinOp(op=op, left=left, right=right, line=op_token.line)
        return left

    def _assignment(self) -> ast.Expr:
        start = self.pos
        return self._spanned(self._assignment_inner(), start)

    def _assignment_inner(self) -> ast.Expr:
        left = self._ternary()
        if self.at("OP") and self.peek().value in _ASSIGN_OPS:
            op_token = self.take()
            if self.at_op("&"):
                self.take()  # assignment by reference: value semantics here
            value = self._assignment()  # right associative
            return ast.Assign(target=left, op=op_token.value, value=value, line=op_token.line)
        return left

    def _ternary(self) -> ast.Expr:
        start = self.pos
        return self._spanned(self._ternary_inner(), start)

    def _ternary_inner(self) -> ast.Expr:
        condition = self._binary(0)
        if self.at_op("?"):
            line = self.take().line
            if self.at_op(":"):
                self.take()
                if_false = self._assignment()
                return ast.Ternary(condition=condition, if_true=None, if_false=if_false, line=line)
            if_true = self._assignment()
            self.expect("OP", ":")
            if_false = self._assignment()
            return ast.Ternary(condition=condition, if_true=if_true, if_false=if_false, line=line)
        return condition

    def _binary(self, min_precedence: int) -> ast.Expr:
        start = self.pos
        left = self._unary()
        while True:
            token = self.peek()
            if token.kind != "OP":
                return left
            precedence = _BINARY_PRECEDENCE.get(token.value)
            if precedence is None or precedence < min_precedence:
                return left
            self.take()
            right = self._binary(precedence + 1)
            left = self._spanned(
                ast.BinOp(op=token.value, left=left, right=right, line=token.line),
                start,
            )

    def _unary(self) -> ast.Expr:
        start = self.pos
        return self._spanned(self._unary_inner(), start)

    def _unary_inner(self) -> ast.Expr:
        start = self.pos
        token = self.peek()
        if token.kind == "OP":
            if token.value == "!":
                self.take()
                return ast.UnaryOp(op="!", operand=self._unary(), line=token.line)
            if token.value == "-":
                self.take()
                return ast.UnaryOp(op="-", operand=self._unary(), line=token.line)
            if token.value == "+":
                self.take()
                return self._unary()
            if token.value == "~":
                self.take()
                return ast.UnaryOp(op="~", operand=self._unary(), line=token.line)
            if token.value == "@":
                self.take()
                return ast.Suppress(operand=self._unary(), line=token.line)
            if token.value == "&":
                self.take()
                return self._unary()
            if token.value in ("++", "--"):
                self.take()
                operand = self._unary()
                return ast.Assign(
                    target=operand,
                    op="+=" if token.value == "++" else "-=",
                    value=ast.Literal(value=1, line=token.line),
                    line=token.line,
                )
            if token.value == "(" and self._looks_like_cast():
                self.take()
                kind = self.take().value.lower()
                self.expect("OP", ")")
                kind = {"integer": "int", "boolean": "bool", "double": "float"}.get(kind, kind)
                return ast.Cast(kind=kind, operand=self._unary(), line=token.line)
        return self._postfix(self._primary(), start)

    def _looks_like_cast(self) -> bool:
        nxt, after = self.peek(1), self.peek(2)
        return (
            nxt.kind in ("IDENT", "KEYWORD")
            and nxt.value.lower() in _CAST_KINDS
            and after.kind == "OP"
            and after.value == ")"
        )

    def _postfix(self, expr: ast.Expr, start: int) -> ast.Expr:
        while True:
            token = self.peek()
            if token.kind != "OP":
                return expr
            if token.value == "[":
                self.take()
                index = None if self.at_op("]") else self.expression()
                self.expect("OP", "]")
                expr = self._spanned(
                    ast.ArrayDim(base=expr, index=index, line=token.line), start
                )
            elif token.value == "(" and isinstance(
                expr, (ast.Var, ast.VarVar, ast.ArrayDim, ast.Prop)
            ):
                # $f(...) / $handlers[$op](...): a dynamic call
                expr = self._spanned(
                    ast.DynCall(target=expr, args=self._args(), line=token.line),
                    start,
                )
            elif token.value == "->":
                self.take()
                if self.at("IDENT") or self.at("KEYWORD"):
                    name = self.take().value
                elif self.at("VARIABLE"):
                    name = "$" + self.take().value  # dynamic property
                else:
                    raise self.error("expected property/method name after ->")
                if self.at_op("("):
                    args = self._args()
                    expr = self._spanned(
                        ast.MethodCall(obj=expr, name=name, args=args, line=token.line),
                        start,
                    )
                else:
                    expr = self._spanned(
                        ast.Prop(base=expr, name=name, line=token.line), start
                    )
            elif token.value in ("++", "--"):
                self.take()
                expr = ast.Assign(
                    target=expr,
                    op="+=" if token.value == "++" else "-=",
                    value=ast.Literal(value=1, line=token.line),
                    line=token.line,
                )
            else:
                return expr

    def _args(self) -> list[ast.Expr]:
        self.expect("OP", "(")
        args = []
        while not self.at_op(")"):
            if self.at_op("&"):
                self.take()
            args.append(self.expression())
            if self.at_op(","):
                self.take()
        self.take()
        return args

    def _primary(self) -> ast.Expr:
        start = self.pos
        return self._spanned(self._primary_inner(), start)

    def _primary_inner(self) -> ast.Expr:
        token = self.peek()
        line = token.line
        if token.kind == "VARIABLE":
            self.take()
            return ast.Var(name=token.value, line=line)
        if token.kind == "NUMBER":
            self.take()
            text = token.value
            if text.startswith(("0x", "0X")):
                return ast.Literal(value=int(text, 16), line=line)
            if "." in text:
                return ast.Literal(value=float(text), line=line)
            return ast.Literal(value=int(text), line=line)
        if token.kind == "SQ_STRING":
            self.take()
            return ast.Literal(value=token.value, line=line)
        if token.kind == "DQ_STRING":
            self.take()
            base = token.offset + 1 if token.offset >= 0 else -1
            expr = expand_interpolation(token.value, line, self.path, base)
            if token.offset >= 0:
                expr.span = (token.offset, token.end)
            return expr
        if token.kind == "OP" and token.value == "$":
            # $$name / ${expr}: a variable-variable
            self.take()
            if self.at_op("{"):
                self.take()
                inner = self.expression()
                self.expect("OP", "}")
                return ast.VarVar(name_expr=inner, line=line)
            return ast.VarVar(name_expr=self._primary(), line=line)
        if token.kind == "OP" and token.value == "(":
            self.take()
            inner = self.expression()
            self.expect("OP", ")")
            return inner
        if token.kind == "KEYWORD":
            return self._keyword_expr(token)
        if token.kind == "IDENT":
            self.take()
            if self.at_op("::"):
                self.take()
                member = self.take().value
                if self.at_op("("):
                    return ast.StaticCall(
                        class_name=token.value, name=member, args=self._args(), line=line
                    )
                return ast.ConstFetch(name=f"{token.value}::{member}", line=line)
            if self.at_op("("):
                return ast.Call(name=token.value.lower(), args=self._args(), line=line)
            return ast.ConstFetch(name=token.value, line=line)
        raise self.error(f"unexpected token {token.value!r}")

    def _keyword_expr(self, token: Token) -> ast.Expr:
        line = token.line
        word = token.value
        if word in ("true", "false"):
            self.take()
            return ast.Literal(value=(word == "true"), line=line)
        if word == "null":
            self.take()
            return ast.Literal(value=None, line=line)
        if word == "array":
            self.take()
            return self._array_literal(line, ")")
        if word == "isset":
            self.take()
            self.expect("OP", "(")
            targets = self._expr_list_until(")")
            return ast.IssetExpr(targets=targets, line=line)
        if word == "empty":
            self.take()
            self.expect("OP", "(")
            target = self.expression()
            self.expect("OP", ")")
            return ast.EmptyExpr(target=target, line=line)
        if word in ("exit", "die"):
            self.take()
            value = None
            if self.at_op("("):
                self.take()
                if not self.at_op(")"):
                    value = self.expression()
                self.expect("OP", ")")
            return ast.Call(name="exit", args=[value] if value else [], line=line)
        if word == "new":
            self.take()
            class_name = self.expect("IDENT").value
            args = self._args() if self.at_op("(") else []
            return ast.New(class_name=class_name, args=args, line=line)
        if word == "print":
            self.take()
            return ast.Call(name="print", args=[self.expression()], line=line)
        if word in ("include", "include_once", "require", "require_once"):
            # include as an expression (rare but legal)
            self.take()
            parenthesized = self.at_op("(")
            if parenthesized:
                self.take()
            path = self.expression()
            if parenthesized:
                self.expect("OP", ")")
            return ast.Call(name=word, args=[path], line=line)
        if word == "not":
            self.take()
            return ast.UnaryOp(op="!", operand=self._unary(), line=line)
        raise self.error(f"unexpected keyword {word!r} in expression")

    def _array_literal(self, line: int, closer: str) -> ast.Expr:
        self.expect("OP", "(" if closer == ")" else "[")
        items: list[tuple[ast.Expr | None, ast.Expr]] = []
        while not self.at_op(closer):
            first = self.expression()
            if self.at_op("=>"):
                self.take()
                items.append((first, self.expression()))
            else:
                items.append((None, first))
            if self.at_op(","):
                self.take()
        self.take()
        return ast.ArrayLit(items=items, line=line)


# ---------------------------------------------------------------------------
# Double-quoted string interpolation
# ---------------------------------------------------------------------------

_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "v": "\v", "f": "\f",
    "\\": "\\", "$": "$", '"': '"', "0": "\0", "e": "\x1b",
}


def expand_interpolation(
    body: str, line: int, path: str, base: int = -1
) -> ast.Expr:
    """Expand a raw double-quoted string body into an :class:`ast.Interp`
    (or a plain :class:`ast.Literal` when there is nothing to interpolate).

    ``base`` is the file offset of ``body[0]`` (``-1`` when unknown, e.g.
    normalized heredoc bodies): with it, every interpolated part carries
    the byte span of its raw source text."""
    parts: list[ast.Expr] = []
    chunk: list[str] = []
    chunk_start = 0
    i = 0
    n = len(body)

    def note(start: int) -> None:
        nonlocal chunk_start
        if not chunk:
            chunk_start = start

    def flush(end: int) -> None:
        if chunk:
            span = (base + chunk_start, base + end) if base >= 0 else None
            parts.append(
                ast.Literal(value="".join(chunk), line=line, span=span)
            )
            chunk.clear()

    while i < n:
        char = body[i]
        if char == "\\" and i + 1 < n:
            esc = body[i + 1]
            if esc == "x" and i + 3 < n:
                try:
                    decoded = chr(int(body[i + 2 : i + 4], 16))
                    note(i)
                    chunk.append(decoded)
                    i += 4
                    continue
                except ValueError:
                    pass
            note(i)
            chunk.append(_ESCAPES.get(esc, "\\" + esc))
            i += 2
            continue
        if char == "$" and i + 1 < n and body[i + 1] in IDENT_START:
            flush(i)
            expr, i = _simple_interp(body, i + 1, line, base)
            parts.append(expr)
            continue
        if char == "{" and i + 1 < n and body[i + 1] == "$":
            flush(i)
            end = _matching_brace(body, i)
            inner = body[i + 1 : end]
            part = _parse_expr_text(
                inner, line, path, base + i + 1 if base >= 0 else -1
            )
            if base >= 0:
                # the splice-friendly span is the whole ``{$…}`` group
                part.span = (base + i, base + end + 1)
            parts.append(part)
            i = end + 1
            continue
        note(i)
        chunk.append(char)
        i += 1
    flush(n)
    if len(parts) == 1 and isinstance(parts[0], ast.Literal):
        return parts[0]
    if not parts:
        return ast.Literal(value="", line=line)
    return ast.Interp(parts=parts, line=line)


def _simple_interp(
    body: str, start: int, line: int, base: int = -1
) -> tuple[ast.Expr, int]:
    def span(lo: int, hi: int):
        return (base + lo, base + hi) if base >= 0 else None

    i = start
    while i < len(body) and body[i] in IDENT_CHARS:
        i += 1
    expr: ast.Expr = ast.Var(
        name=body[start:i], line=line, span=span(start - 1, i)
    )
    if i < len(body) and body[i] == "[":
        end = body.find("]", i)
        if end != -1:
            key_text = body[i + 1 : end]
            key: ast.Expr
            if key_text.startswith("$"):
                key = ast.Var(name=key_text[1:], line=line)
            elif key_text.isdigit():
                key = ast.Literal(value=int(key_text), line=line)
            else:
                key = ast.Literal(value=key_text.strip("'\""), line=line)
            expr = ast.ArrayDim(
                base=expr, index=key, line=line,
                span=span(start - 1, end + 1),
            )
            i = end + 1
    elif body.startswith("->", i) and i + 2 < len(body) and body[i + 2] in IDENT_START:
        j = i + 2
        while j < len(body) and body[j] in IDENT_CHARS:
            j += 1
        expr = ast.Prop(
            base=expr, name=body[i + 2 : j], line=line,
            span=span(start - 1, j),
        )
        i = j
    return expr, i


def _matching_brace(body: str, start: int) -> int:
    depth = 0
    for i in range(start, len(body)):
        if body[i] == "{":
            depth += 1
        elif body[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    raise PhpParseError(f"unbalanced braces in interpolated string: {body!r}")


def _parse_expr_text(
    text: str, line: int, path: str, base: int = -1
) -> ast.Expr:
    tokens = lex("<?php " + text + ";", path)
    parser = Parser(tokens, path)
    expr = parser.expression()
    # sub-parser spans are relative to the synthetic "<?php " + text
    # buffer; shift them into file coordinates (or drop them when the
    # caller has no faithful base offset)
    delta = base - 6
    for node in ast.walk(expr):
        if node.span is not None:
            if base >= 0:
                node.span = (node.span[0] + delta, node.span[1] + delta)
            else:
                node.span = None
    return expr


def parse(source: str, path: str = "<string>") -> ast.File:
    """Parse PHP ``source`` into a :class:`repro.php.ast.File`."""
    return Parser(lex(source, path), path).parse_file()
