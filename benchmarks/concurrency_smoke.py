"""Concurrency smoke test: one multi-tenant daemon, many clients.

Starts a single ``sqlciv serve`` process, makes **two** corpus projects
resident (the startup project plus one via ``load_project``), then
hammers it with N concurrent clients interleaving:

* ``analyze`` — the response document must be **byte-identical** to a
  cold ``sqlciv --json`` run over the same tree, every time;
* ``invalidate`` after a verdict-preserving edit (a newline appended at
  end-of-file shifts no hotspot line), so re-analysis runs constantly
  under the readers without ever changing what they must observe;
* ``fix`` (report-only) — must never error and never perturb the
  analyze documents other clients see.

Any divergence, protocol error, or unclean daemon exit fails the run.
This is the CI ``concurrency-smoke`` job's workload; it is a
correctness gate, not a timing benchmark.

Usage::

    python benchmarks/concurrency_smoke.py [--clients 4] [--iterations 3]
        [--apps eve_activity_tracker tiger_php_news] [--jobs 2]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from perf_harness import run_cli, verdicts  # noqa: E402


def start_daemon(app_root: Path, jobs: int) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.analysis.cli", "serve", str(app_root),
         "--port", "0", "--jobs", str(jobs), "--log-level", "quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True, env=env,
    )
    ready = json.loads(proc.stdout.readline())
    port = int(ready["listening"].rsplit(":", 1)[1])
    return proc, port


def client_worker(
    port: int,
    project: str | None,
    app_root: Path,
    golden: dict,
    iterations: int,
    editable: str | None,
    failures: list[str],
) -> None:
    """One client's interleaved workload against one resident project."""
    from repro.server.client import ServerClient

    label = project or "default"
    try:
        with ServerClient(port=port).connect(retry_seconds=10.0) as client:
            for round_no in range(iterations):
                response = client.analyze(project=project)
                if verdicts(response["document"]) != golden:
                    failures.append(
                        f"{label}: analyze diverged from the cold CLI "
                        f"(round {round_no})"
                    )
                    return
                if editable is not None:
                    # verdict-preserving edit: appending a newline at
                    # end-of-file shifts no hotspot line, so every
                    # concurrent reader must still see the golden doc
                    target = app_root / editable
                    target.write_text(target.read_text() + "\n")
                    client.invalidate([editable], project=project)
                    after = client.analyze(project=project)
                    if verdicts(after["document"]) != golden:
                        failures.append(
                            f"{label}: post-edit analyze diverged "
                            f"(round {round_no})"
                        )
                        return
                    # no pages_reanalyzed assertion here: a concurrent
                    # reader may have re-analyzed the invalidated page
                    # first, in which case this analyze legally replays
                else:
                    report = client.fix(project=project)
                    if "findings" not in report or report.get("applied"):
                        failures.append(
                            f"{label}: fix returned an unexpected shape "
                            f"(round {round_no}): {sorted(report)[:5]}"
                        )
                        return
    except Exception as exc:  # noqa: BLE001 - surfaced to the driver
        failures.append(f"{label}: {type(exc).__name__}: {exc}")


def pick_editable(golden_doc: dict, app_root: Path) -> str:
    """A page file safe to append-edit: prefer a leaf nothing includes."""
    pages = [p["page"] for p in golden_doc["pages"]]
    for page in pages:
        if Path(page).name == "style.php":
            return page
    return pages[0]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", nargs=2,
                        default=["eve_activity_tracker", "tiger_php_news"],
                        metavar=("APP1", "APP2"),
                        help="two corpus apps to make resident")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent clients per project mix")
    parser.add_argument("--iterations", type=int, default=3,
                        help="workload rounds per client")
    parser.add_argument("--jobs", type=int, default=2,
                        help="daemon worker-farm size")
    args = parser.parse_args(argv)

    from repro.corpus import build_app
    from repro.server.client import ServerClient

    with tempfile.TemporaryDirectory(prefix="concsmoke-") as tmp:
        roots: dict[str, Path] = {}
        goldens: dict[str, dict] = {}
        for name in args.apps:
            build_app(Path(tmp), name)
            roots[name] = Path(tmp) / name
            print(f"cold CLI golden for {name} ...", flush=True)
            _wall, doc, _exit = run_cli(roots[name], jobs=1)
            goldens[name] = verdicts(doc)

        first, second = args.apps
        proc, port = start_daemon(roots[first], jobs=args.jobs)
        failures: list[str] = []
        try:
            with ServerClient(port=port).connect(retry_seconds=10.0) as admin:
                loaded = admin.load_project(roots[second], name=second)
                assert loaded["loaded"], loaded
                listing = admin.projects()
                assert len(listing["projects"]) == 2, listing

            threads = []
            for index in range(args.clients):
                # even clients hit the default project, odd ones the
                # loaded tenant; within each pair one client is the
                # editor (invalidate loop) and one runs analyze+fix
                name = first if index % 2 == 0 else second
                project = None if name == first else name
                editable = (
                    pick_editable(goldens[name], roots[name])
                    if index < 2 else None
                )
                threads.append(threading.Thread(
                    target=client_worker,
                    args=(port, project, roots[name], goldens[name],
                          args.iterations, editable, failures),
                    name=f"client-{index}",
                ))
            print(
                f"running {len(threads)} clients x {args.iterations} "
                f"rounds against 2 resident projects ...", flush=True,
            )
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=600)
                if thread.is_alive():
                    failures.append(f"{thread.name}: timed out")

            with ServerClient(port=port).connect() as admin:
                status = admin.status()
                assert status["resident"]["resident.projects"] == 2, status
                admin.shutdown()
            proc.wait(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        if proc.returncode != 0:
            failures.append(f"daemon exit code {proc.returncode}")
        if failures:
            print("concurrency smoke FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(
            f"concurrency smoke passed: {args.clients} clients, "
            f"2 projects, every response byte-identical to the cold CLI, "
            "clean daemon exit"
        )
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
