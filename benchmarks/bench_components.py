"""Component micro-benchmarks: the substrate operations the two phases
are built from (useful for tracking regressions in the hot paths)."""


from repro.analysis import quotes
from repro.analysis.absdom import GrammarBuilder
from repro.lang.charset import CharSet
from repro.lang.earley import derivability, parse_sentential_form
from repro.lang.fst import FST
from repro.lang.grammar import DIRECT
from repro.lang.intersect import intersection_is_empty
from repro.lang.regex import parse_regex, search_language
from repro.sql.grammar import sql_grammar
from repro.sql.lexer import token_symbols


def test_regex_compile_and_determinize(benchmark):
    def run():
        return search_language(
            parse_regex(r"[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.(com|org|net)")
        ).determinize()

    dfa = benchmark(run)
    assert dfa.accepts_string("user@host.com")


def test_quote_parity_emptiness(benchmark):
    """C1 on a realistic refined query grammar."""
    builder = GrammarBuilder()
    value = builder.any_string(DIRECT)
    refined = builder.refine_regex(value, parse_regex("[0-9]+"), positive=True)
    query = builder.concat_all(
        [builder.literal("SELECT * FROM t WHERE id='"), refined, builder.literal("'")]
    )
    scope = builder.grammar.subgrammar(query.nt)

    def run():
        return intersection_is_empty(scope, query.nt, quotes.odd_unescaped_quotes())

    assert benchmark(run) is False  # the attack is in there


def test_fst_image_escape(benchmark):
    builder = GrammarBuilder()
    value = builder.any_string(DIRECT)
    fst = FST.escape_chars(CharSet.of("'\"\\"))

    def run():
        return builder.image(value, fst)

    escaped = benchmark(run)
    assert builder.grammar.has_label(escaped.nt, DIRECT) or builder.labels_of(escaped)


def test_sql_earley_parse(benchmark):
    symbols = token_symbols(
        "SELECT a, b FROM t JOIN u ON t.id = u.id "
        "WHERE a = 1 AND b LIKE 'x%' ORDER BY a DESC LIMIT 10"
    )

    def run():
        return parse_sentential_form(sql_grammar(), "query_list", symbols)

    assert benchmark(run)


def test_derivability_check(benchmark):
    from repro.lang.earley import TokenGrammar

    generated = TokenGrammar("u")
    generated.add("u", ["u", "AND", "cmp"])
    generated.add("u", ["cmp"])
    generated.add("cmp", ["IDENT", "=", "NUMBER"])
    generated.add("cmp", ["IDENT", "=", "STRING"])

    def run():
        return derivability(generated, sql_grammar(), "u")

    result = benchmark(run)
    assert result.derivable
