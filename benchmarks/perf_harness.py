"""Wall-clock benchmark of the parallel driver, the on-disk cache, and
the analysis daemon.

Runs every corpus application through the ``sqlciv`` CLI in four
batch configurations —

* ``serial``         — ``--jobs 1``, no cache (the baseline path),
* ``parallel``       — ``--jobs N`` (default: one per core),
* ``cache_cold``     — ``--jobs 1 --cache-dir`` on an empty cache,
* ``cache_warm``     — the same command again on the now-populated cache

— plus a ``sqlciv serve`` daemon scenario measuring the per-request
wall of three requests against one resident process:

* ``daemon_cold``    — first ``analyze`` (every page analyzed),
* ``daemon_warm``    — second ``analyze`` (every page replayed from memo),
* ``daemon_edit``    — ``analyze`` after touching **one** file and
  sending ``invalidate`` (only that file's dependents re-analyzed)

— asserting after each app that all configurations emit the **same
verdicts** (the ``--json`` documents, minus the ``perf`` block, must
match), and writes the timing table to ``BENCH_table1.json`` at the
repository root.  Each batch configuration is a fresh subprocess, so
in-process memos (verdict cache, image cache, parse cache) are
genuinely cold every time; only the ``--cache-dir`` state carries over
to the warm run, and only the daemon scenario keeps memos resident.

The warm run's perf counters quantify how much phase-2 work the disk
cache avoids: ``policy.checks_avoided`` counts hotspot cascades served
from cached page results, and ``policy.check_cascades`` counts cascades
actually executed.

Usage::

    python benchmarks/perf_harness.py [--jobs N] [--apps eve_activity_tracker ...]
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_APPS = [
    "eve_activity_tracker",
    "tiger_php_news",
    "utopia_news_pro",
    "warp_cms",
    "e107",
]


def run_cli(app_root: Path, jobs: int, cache_dir: Path | None = None):
    """One fresh-process CLI run; returns (wall_seconds, json_doc, exit)."""
    command = [
        sys.executable,
        "-m",
        "repro.analysis.cli",
        str(app_root),
        "--json",
        "--profile",
        "--jobs",
        str(jobs),
    ]
    if cache_dir is not None:
        command += ["--cache-dir", str(cache_dir)]
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    started = time.perf_counter()
    proc = subprocess.run(command, capture_output=True, text=True, env=env)
    wall = time.perf_counter() - started
    if proc.returncode not in (0, 1, 3):
        raise RuntimeError(
            f"sqlciv failed ({proc.returncode}): {proc.stderr[-2000:]}"
        )
    return wall, json.loads(proc.stdout), proc.returncode


def verdicts(document: dict) -> dict:
    """The comparable part of a --json document (perf/timing stripped)."""
    return {key: value for key, value in document.items() if key != "perf"}


def analysis_wall(document: dict) -> float | None:
    """The in-process page-analysis wall (``run.pages_wall`` timer) a
    ``--profile`` run embeds — interpreter start-up and report rendering
    excluded, so the parallel speedup measures page throughput rather
    than being drowned by the ~0.5s constant python/import cost every
    subprocess pays regardless of jobs."""
    return document.get("perf", {}).get("timers", {}).get("run.pages_wall")


#: farm counters worth surfacing per app (work stealing, cascade
#: splitting, the include/parse pre-pass, and the shared memo sections)
FARM_COUNTERS = (
    "farm.tasks.stolen",
    "farm.pages.split",
    "farm.tasks.cascades",
    "farm.prepass.files_parsed",
    "farm.prepass.files_shared",
    "farm.prepass.files_discovered",
    "farm.verdict.shared_hits",
    "farm.image.shared_hits",
    "farm.ast.shared_hits",
)


def bench_daemon(app_root: Path, serial_doc: dict) -> dict:
    """Cold / warm / post-single-edit request walls against one
    ``sqlciv serve`` process (README "Server mode")."""
    from repro.server.client import ServerClient

    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.analysis.cli", "serve",
         str(app_root), "--port", "0", "--log-level", "quiet"],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, text=True, env=env,
    )
    try:
        ready = json.loads(proc.stdout.readline())
        port = int(ready["listening"].rsplit(":", 1)[1])
        with ServerClient(port=port).connect(retry_seconds=10.0) as client:
            started = time.perf_counter()
            cold = client.analyze()
            cold_wall = time.perf_counter() - started

            started = time.perf_counter()
            warm = client.analyze()
            warm_wall = time.perf_counter() - started

            # single edit: prefer a leaf page nothing else includes
            # (style.php in the eve corpus app), else the first page
            pages = [Path(p["page"]) for p in cold["document"]["pages"]]
            target = next(
                (p for p in pages if p.name == "style.php"), pages[0]
            )
            target.write_text(target.read_text() + "\n")
            rel = target.relative_to(app_root).as_posix()
            client.invalidate([rel])
            started = time.perf_counter()
            edited = client.analyze()
            edit_wall = time.perf_counter() - started

            client.shutdown()
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    for label, response in (("cold", cold), ("warm", warm)):
        if verdicts(response["document"]) != verdicts(serial_doc):
            raise AssertionError(
                f"daemon {label} run diverged from the serial run"
            )
    if warm["pages_reanalyzed"] != 0:
        raise AssertionError("daemon warm run re-analyzed pages")
    return {
        "daemon_cold": round(cold_wall, 3),
        "daemon_warm": round(warm_wall, 3),
        "daemon_edit": round(edit_wall, 3),
        "edited_file": rel,
        "pages_total": cold["pages_total"],
        "pages_reanalyzed_after_edit": edited["pages_reanalyzed"],
        "clean_exit": proc.returncode == 0,
    }


def bench_app(name: str, jobs: int) -> dict:
    from repro.corpus import build_app

    with tempfile.TemporaryDirectory(prefix=f"bench-{name}-") as tmp:
        build_app(Path(tmp), name)
        app_root = Path(tmp) / name
        cache_dir = Path(tmp) / "cache"

        serial_wall, serial_doc, serial_exit = run_cli(app_root, jobs=1)
        parallel_wall, parallel_doc, _ = run_cli(app_root, jobs=jobs)
        cold_wall, cold_doc, _ = run_cli(app_root, jobs=1, cache_dir=cache_dir)
        warm_wall, warm_doc, _ = run_cli(app_root, jobs=1, cache_dir=cache_dir)

        for label, doc in (
            ("parallel", parallel_doc),
            ("cache_cold", cold_doc),
            ("cache_warm", warm_doc),
        ):
            if verdicts(doc) != verdicts(serial_doc):
                raise AssertionError(
                    f"{name}: {label} run diverged from the serial run"
                )

        daemon = bench_daemon(app_root, serial_doc)

        warm_counters = warm_doc.get("perf", {}).get("counters", {})
        cold_counters = cold_doc.get("perf", {}).get("counters", {})
        avoided = warm_counters.get("policy.checks_avoided", 0)
        executed = warm_counters.get("policy.check_cascades", 0)
        total = avoided + executed
        # a speedup ratio is only meaningful when the box can actually
        # run the requested workers concurrently; on an undersized box
        # (cpu_count < jobs) report null + a degraded marker instead of
        # a number that reads as "parallelism doesn't help"
        cpu_count = os.cpu_count() or 1
        degraded = cpu_count < jobs
        serial_analysis = analysis_wall(serial_doc)
        parallel_analysis = analysis_wall(parallel_doc)
        parallel_counters = parallel_doc.get("perf", {}).get("counters", {})
        farm = {
            key: parallel_counters[key]
            for key in FARM_COUNTERS
            if parallel_counters.get(key)
        }
        return {
            "app": name,
            "pages": len(serial_doc["pages"]),
            "hotspots": sum(len(p["hotspots"]) for p in serial_doc["pages"]),
            "verified": serial_doc["verified"],
            "exit_code": serial_exit,
            "wall_seconds": {
                "serial": round(serial_wall, 3),
                "parallel": round(parallel_wall, 3),
                "cache_cold": round(cold_wall, 3),
                "cache_warm": round(warm_wall, 3),
                "daemon_cold": daemon["daemon_cold"],
                "daemon_warm": daemon["daemon_warm"],
                "daemon_edit": daemon["daemon_edit"],
            },
            "daemon": {
                "edited_file": daemon["edited_file"],
                "pages_reanalyzed_after_edit":
                    daemon["pages_reanalyzed_after_edit"],
                "pages_total": daemon["pages_total"],
                "clean_exit": daemon["clean_exit"],
            },
            "analysis_wall_seconds": {
                "serial": (
                    round(serial_analysis, 3)
                    if serial_analysis is not None else None
                ),
                "parallel": (
                    round(parallel_analysis, 3)
                    if parallel_analysis is not None else None
                ),
            },
            # page-throughput speedup from the analysis wall; null (with
            # a marker) whenever the box is degraded or the timer is
            # missing, never a misleading number
            "parallel_speedup": (
                None
                if degraded or not serial_analysis or not parallel_analysis
                else round(serial_analysis / parallel_analysis, 2)
            ),
            "process_speedup": (
                None if degraded else round(serial_wall / parallel_wall, 2)
            ),
            **({"degraded": "cpu_count < jobs"} if degraded else {}),
            **({"farm_counters": farm} if farm else {}),
            "warm_speedup": round(cold_wall / warm_wall, 2),
            "phase2_cascades_cold": cold_counters.get("policy.check_cascades", 0),
            "phase2_cascades_warm": executed,
            "phase2_avoided_warm": avoided,
            "phase2_avoided_fraction": round(avoided / total, 3) if total else None,
        }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=max(2, os.cpu_count() or 2),
        help=(
            "worker count for the parallel configuration (default: one "
            "per core, at least 2 so the pool is actually exercised; "
            "real speedup of course needs >1 core — see cpu_count in "
            "the output)"
        ),
    )
    parser.add_argument(
        "--apps", nargs="*", default=DEFAULT_APPS,
        help="corpus applications to benchmark",
    )
    parser.add_argument(
        "--output", default=str(REPO_ROOT / "BENCH_table1.json"),
        help="where to write the timing table",
    )
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))

    rows = []
    for name in args.apps:
        print(f"benchmarking {name} ...", flush=True)
        row = bench_app(name, args.jobs)
        rows.append(row)
        speedup = (
            f"{row['parallel_speedup']}x analysis"
            if row["parallel_speedup"] is not None
            else "speedup n/a: " + row.get("degraded", "timer missing")
        )
        print(
            f"  serial {row['wall_seconds']['serial']}s"
            f"  parallel {row['wall_seconds']['parallel']}s"
            f" ({speedup})"
            f"  warm-cache {row['wall_seconds']['cache_warm']}s"
            f" ({row['warm_speedup']}x,"
            f" {row['phase2_avoided_warm']} cascades avoided)",
            flush=True,
        )
        print(
            f"  daemon cold {row['wall_seconds']['daemon_cold']}s"
            f"  warm {row['wall_seconds']['daemon_warm']}s"
            f"  post-edit {row['wall_seconds']['daemon_edit']}s"
            f" ({row['daemon']['pages_reanalyzed_after_edit']}/"
            f"{row['daemon']['pages_total']} pages re-analyzed)",
            flush=True,
        )

    table = {
        "benchmark": (
            "parallel page analysis + content-addressed caching + "
            "incremental analysis daemon"
        ),
        "jobs": args.jobs,
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count(),
        "apps": rows,
    }
    output = Path(args.output)
    output.write_text(json.dumps(table, indent=2) + "\n")
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
