"""Figure-reproduction benchmarks (Figures 2, 4, 5, 6, 8, 9, 10).

Each benchmark regenerates a figure's observable content and asserts the
paper's qualitative result; see repro/evaluation/figures.py for what
each figure contains.
"""

from repro.evaluation import figures


def test_figure2_vulnerability(benchmark):
    result = benchmark.pedantic(figures.figure2, rounds=1, iterations=1)
    assert not result["verified"]
    assert result["attack_query_derivable"]
    assert not result["attack_confined"]


def test_figure4_grammar_productions(benchmark):
    result = benchmark.pedantic(figures.figure4, rounds=1, iterations=1)
    assert result["direct_labeled"] >= 1
    # the refined userid keeps at least one digit in every sample
    assert all(any(c.isdigit() for c in s) for s in result["samples"])


def test_figure5_dataflow_grammar(benchmark):
    result = benchmark.pedantic(figures.figure5, rounds=1, iterations=1)
    # X4 -> X2 | X3 with both branches appending "s": "s" derivable once
    assert result["derives_s"]


def test_figure6_fst(benchmark):
    result = benchmark.pedantic(figures.figure6, rounds=1, iterations=1)
    assert result["cases"]["A''B"] == "A'B"
    assert result["cases"]["''''"] == "''"
    assert result["cases"]["'"] == "'"


def test_figure8_explode(benchmark):
    result = benchmark.pedantic(figures.figure8, rounds=1, iterations=1)
    assert result["derives"]["a"] and result["derives"]["b"] and result["derives"]["c"]
    assert not result["derives"]["a,b"]


def test_figures_9_and_10(benchmark, corpus_root, unp_app):
    result = benchmark.pedantic(
        figures.figures_9_and_10, args=(corpus_root,), rounds=1, iterations=1
    )
    assert result["figure9_false_positive_reported"]
    assert result["figure10_indirect_reported"]
