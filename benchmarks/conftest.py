"""Shared fixtures for the benchmark harness."""

import pytest

from repro.corpus import build_app


@pytest.fixture(scope="session")
def corpus_root(tmp_path_factory):
    """One corpus build per benchmark session (apps built on demand)."""
    return tmp_path_factory.mktemp("bench-corpus")


@pytest.fixture(scope="session")
def unp_app(corpus_root):
    build_app(corpus_root, "utopia_news_pro")
    return corpus_root / "utopia_news_pro"


@pytest.fixture(scope="session")
def eve_app(corpus_root):
    build_app(corpus_root, "eve_activity_tracker")
    return corpus_root / "eve_activity_tracker"


@pytest.fixture(scope="session")
def tiger_app(corpus_root):
    build_app(corpus_root, "tiger_php_news")
    return corpus_root / "tiger_php_news"


@pytest.fixture(scope="session")
def warp_app(corpus_root):
    build_app(corpus_root, "warp_cms")
    return corpus_root / "warp_cms"
