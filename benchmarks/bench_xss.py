"""Benchmark for the XSS extension (paper §7 future work)."""

import textwrap

import pytest

from repro.analysis.xss import analyze_page_xss

PAGES = {
    "vulnerable": """\
        <?php
        $name = $_GET['name'];
        echo "<h1>Hello $name</h1>";
        """,
    "encoded": """\
        <?php
        $name = htmlspecialchars($_GET['name'], ENT_QUOTES);
        echo "<h1>Hello $name</h1>";
        """,
}


@pytest.mark.parametrize("kind", list(PAGES))
def test_xss_analysis(benchmark, tmp_path, kind):
    page_dir = tmp_path / kind
    page_dir.mkdir()
    (page_dir / "page.php").write_text(textwrap.dedent(PAGES[kind]))

    def run():
        return analyze_page_xss(page_dir, "page.php")

    reports = benchmark(run)
    flagged = any(not r.verified for r in reports)
    assert flagged == (kind == "vulnerable")
