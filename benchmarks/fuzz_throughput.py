"""Throughput benchmark for the differential soundness fuzzer.

Measures, for a fixed seed and iteration budget, how the fuzz loop's
wall-clock divides between its three stages —

* ``generate``  — sampling the page + input vectors,
* ``analyze``   — the abstract interpreter + verdict cascades,
* ``execute``   — concrete interpretation and membership/verdict
  cross-checks

— and reports pages/second and sink-hits/second.  The numbers bound
how large a CI iteration budget can be (``.github/workflows``): the
smoke job runs 150 iterations, the nightly budget is derived from the
pages/second figure here.

Writes ``BENCH_fuzz.json`` at the repository root.

Usage::

    python benchmarks/fuzz_throughput.py [--iterations N] [--seed S]
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.corpus.generator import generate_fuzz_page  # noqa: E402
from repro.oracle.differ import PageOracle  # noqa: E402
from repro.oracle.fuzz import sample_vector  # noqa: E402
from repro.oracle.interp import UnsupportedConstruct, execute_page  # noqa: E402


def run_benchmark(iterations: int, seed: int, vectors_per_page: int) -> dict:
    rng = random.Random(seed)
    timings = {"generate": 0.0, "analyze": 0.0, "execute": 0.0}
    hits = 0
    divergences = 0
    skipped = 0
    started = time.perf_counter()
    for _ in range(iterations):
        workdir = Path(tempfile.mkdtemp(prefix="sqlciv-fuzz-bench-"))
        try:
            begin = time.perf_counter()
            entry = generate_fuzz_page(workdir, rng)
            vectors = [sample_vector(rng) for _ in range(vectors_per_page)]
            timings["generate"] += time.perf_counter() - begin

            begin = time.perf_counter()
            oracle = PageOracle(workdir, entry)
            timings["analyze"] += time.perf_counter() - begin

            begin = time.perf_counter()
            for vector in vectors:
                try:
                    page_hits = execute_page(workdir, entry, vector)
                except UnsupportedConstruct:
                    skipped += 1
                    continue
                hits += len(page_hits)
                for hit in page_hits:
                    divergences += len(oracle.check_hit(hit, vector))
            timings["execute"] += time.perf_counter() - begin
        finally:
            shutil.rmtree(workdir, ignore_errors=True)
    elapsed = time.perf_counter() - started
    return {
        "iterations": iterations,
        "seed": seed,
        "vectors_per_page": vectors_per_page,
        "elapsed_s": round(elapsed, 3),
        "pages_per_s": round(iterations / elapsed, 2),
        "hits": hits,
        "hits_per_s": round(hits / elapsed, 2),
        "skipped_vectors": skipped,
        "divergences": divergences,
        "stage_s": {stage: round(value, 3) for stage, value in timings.items()},
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--iterations", type=int, default=50)
    parser.add_argument("--seed", type=int, default=1337)
    parser.add_argument("--vectors-per-page", type=int, default=4)
    options = parser.parse_args(argv)
    result = run_benchmark(
        options.iterations, options.seed, options.vectors_per_page
    )
    out = ROOT / "BENCH_fuzz.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {out}")
    return 1 if result["divergences"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
