"""§5.3 replacement-chain blow-up ablation.

The paper: "Each regular expression or string replacement function
(potentially) causes its argument's grammar to increase by some factor,
so that a sequence of these replacement expressions leads to a blow up
that is exponential in the number of replacements."  They hand-removed
such code from Tiger; we implement their proposed fix (widening bounded
by a threshold) and measure both sides of the trade here.
"""

import pytest

from repro.analysis.absdom import GrammarBuilder
from repro.lang.fst import FST


def chain(builder: GrammarBuilder, length: int):
    value = builder.any_string(hint="text")
    for index in range(length):
        fst = FST.replace_string(f"[t{index}]", f"<em{index}>")
        value = builder.image(value, fst, f"step{index}")
    return value


@pytest.mark.parametrize("length", [2, 4, 8])
def test_chain_with_widening(benchmark, length):
    """Bounded: the widening threshold keeps chains tractable."""

    def run():
        builder = GrammarBuilder(widen_threshold=600)
        chain(builder, length)
        return builder.grammar.num_productions()

    productions = benchmark(run)
    assert productions < 60_000


@pytest.mark.parametrize("length", [2, 4])
def test_chain_without_widening(benchmark, length):
    """Unbounded (the paper's blow-up): growth per step is multiplicative.
    Kept to short chains — this is the configuration that made the paper
    remove code from Tiger."""

    def run():
        builder = GrammarBuilder(widen_threshold=10**9)
        chain(builder, length)
        return builder.grammar.num_productions()

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_blowup_factor_shape(tmp_path):
    """The growth *factor* without widening exceeds the one with it."""

    def size(threshold, length):
        builder = GrammarBuilder(widen_threshold=threshold)
        chain(builder, length)
        return builder.grammar.num_productions()

    unbounded_growth = size(10**9, 4) / size(10**9, 2)
    bounded_growth = size(600, 4) / size(600, 2)
    assert unbounded_growth > bounded_growth
