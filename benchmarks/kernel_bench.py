"""Micro-benchmarks for the core formal-language kernels.

Times each hot kernel in isolation — charset algebra, the Earley
recognizer, FST image construction, CFG ∩ FSA intersection, and
sentential-form sampling — and measures the abstraction pre-filter's
hit rate over the two corpus apps whose cold wall time the CI gate
tracks.  Each kernel runs a fixed, deterministic workload, so the
ops/second figures are comparable across commits.

Writes ``BENCH_kernels.json`` at the repository root.

Usage::

    python benchmarks/kernel_bench.py [--reps N]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.lang.charset import CharSet  # noqa: E402
from repro.lang.earley import TokenGrammar, parse_sentential_form  # noqa: E402
from repro.lang.fst import FST  # noqa: E402
from repro.lang.grammar import Grammar, Lit  # noqa: E402
from repro.lang.image import IMAGE_CACHE, fst_image  # noqa: E402
from repro.lang.intersect import intersect, intersection_is_empty  # noqa: E402
from repro.lang.regex import full_match_language, parse_regex, search_language  # noqa: E402


def _rate(count: int, seconds: float) -> float:
    return round(count / seconds, 1) if seconds > 0 else float("inf")


# -- fixed workloads ----------------------------------------------------------


def _charsets() -> list[CharSet]:
    return [
        CharSet.of("abc"),
        CharSet.range("a", "z"),
        CharSet.range("0", "9"),
        CharSet.of("'\"\\"),
        CharSet.range("a", "z").union(CharSet.range("A", "Z")),
        CharSet.of(" \t\r\n"),
        CharSet([(0x100, 0x2FF), (0x400, 0x4FF)]),
        CharSet.any_char(),
    ]


def bench_charset(reps: int) -> dict:
    sets = _charsets()
    pairs = [(a, b) for a in sets for b in sets]
    count = 0
    started = time.perf_counter()
    for _ in range(reps):
        for a, b in pairs:
            a.union(b)
            a.intersect(b)
            a.overlaps(b)
            a.is_subset_of(b)
            count += 4
    elapsed = time.perf_counter() - started
    return {"ops": count, "ops_per_s": _rate(count, elapsed)}


def _token_grammar() -> TokenGrammar:
    g = TokenGrammar("S")
    g.add("S", ("S", "+", "T"))
    g.add("S", ("T",))
    g.add("T", ("T", "*", "F"))
    g.add("T", ("F",))
    g.add("F", ("(", "S", ")"))
    g.add("F", ("n",))
    g.add("F", ())
    return g


def bench_earley(reps: int) -> dict:
    g = _token_grammar()
    forms = [
        ("n", "+", "n"),
        ("n", "*", "n", "+", "n"),
        ("(", "n", "+", "n", ")", "*", "n"),
        ("T", "+", "F"),
        ("n", "n"),
        ("(", ")", "+"),
    ]
    count = 0
    started = time.perf_counter()
    for _ in range(reps):
        for form in forms:
            parse_sentential_form(g, "S", form)
            count += 1
    elapsed = time.perf_counter() - started
    return {"parses": count, "parses_per_s": _rate(count, elapsed)}


def _query_grammar() -> Grammar:
    """A small SQL-query-shaped grammar with a tainted hole."""
    g = Grammar()
    query, clause, value = g.fresh("query"), g.fresh("clause"), g.fresh("value")
    g.start = query
    g.add(query, (Lit("SELECT * FROM t WHERE "), clause))
    g.add(clause, (Lit("id = '"), value, Lit("'")))
    g.add(clause, (clause, Lit(" AND "), clause))
    g.add(value, (CharSet.range("a", "z"), value))
    g.add(value, (CharSet.range("0", "9"),))
    g.add(value, (Lit("x"),))
    g.add_label(value, "GET:id")
    return g


FSTS = [
    FST.escape_chars(CharSet.of("'\"\\")),
    FST.delete_chars(CharSet.of("'")),
    FST.replace_chars(CharSet.of("'"), "''"),
    FST.lowercase(),
]


def bench_fst_image(reps: int) -> dict:
    count = 0
    started = time.perf_counter()
    for _ in range(reps):
        # a fresh grammar per rep defeats the per-instance memos; the
        # content-addressed IMAGE_CACHE is cleared so every rep measures
        # a genuinely cold construction
        g = _query_grammar()
        IMAGE_CACHE.clear()
        for fst in FSTS:
            fst_image(g, g.start, fst)
            count += 1
    elapsed = time.perf_counter() - started
    return {"images": count, "images_per_s": _rate(count, elapsed)}


DFA_PATTERNS = ["'", "[0-9]", "--", "[^a-z0-9' =*SELECTFROMWHR]"]


def _dfas():
    contains = [
        search_language(parse_regex(p)).determinize() for p in DFA_PATTERNS
    ]
    full = [full_match_language(parse_regex("[a-z0-9]*")).determinize()]
    return contains + full


def bench_intersection(reps: int) -> dict:
    dfas = _dfas()
    queries = 0
    materializations = 0
    started = time.perf_counter()
    for _ in range(reps):
        g = _query_grammar()
        for dfa in dfas:
            if not intersection_is_empty(g, g.start, dfa):
                intersect(g, g.start, dfa)
                materializations += 1
            queries += 1
    elapsed = time.perf_counter() - started
    return {
        "emptiness_queries": queries,
        "materializations": materializations,
        "queries_per_s": _rate(queries, elapsed),
    }


def bench_sampling(reps: int) -> dict:
    count = 0
    started = time.perf_counter()
    for _ in range(reps):
        g = _query_grammar()
        g.sample_strings(g.start, limit=3, max_len=200)
        count += 1
    elapsed = time.perf_counter() - started
    return {"calls": count, "calls_per_s": _rate(count, elapsed)}


def bench_prefilter_hit_rate() -> dict:
    """Pre-filter hits/misses over full analyses of two corpus apps."""
    from repro.corpus import build_app
    from repro.analysis.analyzer import entry_pages, run_pages
    from repro.obs.metrics import PERF

    per_app: dict[str, dict] = {}
    for app in ("tiger_php_news", "utopia_news_pro"):
        with tempfile.TemporaryDirectory(prefix=f"kernelbench-{app}-") as tmp:
            build_app(Path(tmp), app)
            app_root = Path(tmp) / app
            before = PERF.snapshot()
            run_pages(app_root, entry_pages(app_root), audit=True, jobs=1)
            diff = PERF.diff(before)
            counters = diff.get("counters", {})
            hits = counters.get("prefilter.hits", 0)
            misses = counters.get("prefilter.misses", 0)
            total = hits + misses
            per_app[app] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / total, 3) if total else None,
            }
    return per_app


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=200)
    options = parser.parse_args(argv)
    sys.setrecursionlimit(100_000)

    reps = options.reps
    result = {
        "reps": reps,
        "charset": bench_charset(reps),
        "earley": bench_earley(max(1, reps // 4)),
        "fst_image": bench_fst_image(max(1, reps // 10)),
        "intersection": bench_intersection(max(1, reps // 10)),
        "sampling": bench_sampling(reps),
        "prefilter": bench_prefilter_hit_rate(),
    }
    out = ROOT / "BENCH_kernels.json"
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    print(f"wrote {out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
