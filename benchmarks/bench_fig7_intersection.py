"""Figure 7 benchmark: the CFG–FSA intersection with taint propagation.

Measures the worklist algorithm on grammars/automata of growing size and
asserts Theorem 3.1 (labels survive) on every run.
"""

import pytest

from repro.lang.charset import CharSet
from repro.lang.fsa import NFA
from repro.lang.grammar import DIRECT, Grammar, Lit
from repro.lang.intersect import intersect
from repro.lang.regex import parse_regex, search_language


def balanced_grammar(alternatives: int):
    """S → (S) | a₁ | … | aₙ with a tainted leaf."""
    g = Grammar()
    s = g.fresh("S")
    leaf = g.fresh("LEAF")
    g.start = s
    g.add(s, (Lit("("), s, Lit(")")))
    g.add(s, (leaf,))
    for index in range(alternatives):
        g.add(s, (Lit(f"w{index}"),))
    g.add(leaf, (CharSet.any_char(),))
    g.add_label(leaf, DIRECT)
    return g, s


@pytest.mark.parametrize("alternatives", [4, 16, 64])
def test_intersection_scaling(benchmark, alternatives):
    grammar, start = balanced_grammar(alternatives)
    dfa = search_language(parse_regex(r"\(+[0-9w]")).determinize()

    def run():
        return intersect(grammar, start, dfa)

    result, new_start = benchmark(run)
    assert result.labeled_nonterminals(DIRECT), "Theorem 3.1 violated"


@pytest.mark.parametrize("states", [3, 9, 27])
def test_intersection_vs_automaton_size(benchmark, states):
    """Triple construction grows with |Q|²; the fixpoint must stay fast."""
    grammar, start = balanced_grammar(8)
    # an automaton with `states` chained mandatory characters
    nfa = NFA.epsilon_language()
    for _ in range(states):
        nfa = nfa.concat(NFA.from_charset(CharSet.any_char()))
    nfa = nfa.concat(NFA.any_string())
    dfa = nfa.determinize()

    result, new_start = benchmark(lambda: intersect(grammar, start, dfa))
    assert result.num_productions() > 0
