"""Table 1 regeneration benchmarks: one per application row.

Each benchmark runs the full two-phase analysis of one corpus app and
asserts the row's report anatomy (real/false/indirect) so a performance
run doubles as a correctness check.  The e107 row is the headline
scalability claim (741 files) and runs once.

The *shape* claims from §5.3 that these rows demonstrate:

* the check phase is much cheaper than the string-analysis phase,
* grammar size is not proportional to application size (Tiger's query
  grammar outweighs e107's despite 17× fewer lines of code).
"""

import pytest

from repro.analysis.analyzer import analyze_project
from repro.corpus import build_app
from repro.evaluation.table1 import classify


def _run(root, name):
    manifest = build_app(root, name)
    report = analyze_project(root / name, manifest.name)
    return classify(report, manifest), report


@pytest.mark.parametrize(
    "app,expected",
    [
        ("eve_activity_tracker", (4, 0, 1)),
        ("tiger_php_news", (0, 3, 2)),
        ("utopia_news_pro", (14, 2, 12)),
        ("warp_cms", (0, 0, 0)),
    ],
)
def test_table1_row(benchmark, tmp_path, app, expected):
    row, report = benchmark.pedantic(
        _run, args=(tmp_path, app), rounds=1, iterations=1
    )
    assert (row.direct_real, row.direct_false, row.indirect) == expected
    assert row.clean, (row.unexpected, row.missed)


def test_table1_row_e107(benchmark, tmp_path):
    row, report = benchmark.pedantic(
        _run, args=(tmp_path, "e107"), rounds=1, iterations=1
    )
    assert (row.direct_real, row.direct_false, row.indirect) == (1, 0, 4)
    assert row.clean, (row.unexpected, row.missed)


def test_phase_split_recorded(benchmark, tmp_path):
    """§5.3 phase-cost comparison ("SQLCIV checking never took more than
    a few minutes" vs. hours of string analysis).  We *record* the split;
    the absolute ratio differs from the paper's because our string phase
    is not hours long (see EXPERIMENTS.md), but both phases must complete
    well inside the paper's minutes-scale budget."""

    def run():
        manifest = build_app(tmp_path, "utopia_news_pro")
        return analyze_project(tmp_path / "utopia_news_pro", manifest.name)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.string_analysis_seconds < 180
    assert report.check_seconds < 180
