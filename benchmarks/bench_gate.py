"""CI performance gate: fail when cold analysis walls regress.

Measures the cold serial wall of the ``sqlciv`` CLI — one fresh
subprocess per app, no cache, ``--jobs 1``, exactly the ``serial``
configuration of :mod:`benchmarks.perf_harness` — and compares each
wall against the per-app budget in ``benchmarks/budgets.json``.  The
gate fails if any app runs more than ``tolerance`` (default 25%) over
its budget, so a change that quietly gives back the kernel-level
speedups breaks CI instead of landing.

``--parallel`` gates the analysis farm instead: for every app in
``parallel_speedup_min`` it measures the in-process page-analysis wall
(the ``run.pages_wall`` timer a ``--profile`` run embeds) serially and
at ``parallel_jobs`` workers, and fails if the speedup falls below the
per-app floor.  On a box with fewer cores than ``parallel_jobs`` the
ratio is meaningless, so — mirroring the harness's ``degraded``
marker — the gate prints a warning and skips rather than failing.

Budgets are calibrated on the reference machine with deliberate
headroom over the measured walls (see the ``calibration`` block in
``budgets.json``), so ordinary CI-runner jitter stays well inside the
tolerance; a genuine algorithmic regression does not.  After an
intentional performance change, re-calibrate with::

    python benchmarks/bench_gate.py --update

which re-measures and rewrites ``budgets.json`` using the same
headroom factor.

Usage::

    python benchmarks/bench_gate.py [--tolerance 0.25] [--reps 3] [--update]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BUDGETS_PATH = Path(__file__).resolve().parent / "budgets.json"

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from perf_harness import analysis_wall, run_cli  # noqa: E402


def measure_app(name: str, reps: int) -> float:
    """Best-of-``reps`` cold serial CLI wall for one corpus app.

    Best-of (not mean) because every source of noise — scheduler,
    page-cache state, CPU frequency — only ever adds time; the minimum
    is the closest observation of the code's actual cost.
    """
    from repro.corpus import build_app

    walls = []
    with tempfile.TemporaryDirectory(prefix=f"benchgate-{name}-") as tmp:
        build_app(Path(tmp), name)
        app_root = Path(tmp) / name
        for _ in range(reps):
            wall, _doc, _exit = run_cli(app_root, jobs=1)
            walls.append(wall)
    return min(walls)


def measure_speedup(name: str, jobs: int, reps: int) -> float | None:
    """Best-of-``reps`` analysis-wall speedup (serial / ``jobs``-worker)
    for one corpus app; ``None`` if the timer is missing."""
    from repro.corpus import build_app

    serial_walls: list[float] = []
    parallel_walls: list[float] = []
    with tempfile.TemporaryDirectory(prefix=f"benchgate-{name}-") as tmp:
        build_app(Path(tmp), name)
        app_root = Path(tmp) / name
        for _ in range(reps):
            _wall, doc, _exit = run_cli(app_root, jobs=1)
            serial = analysis_wall(doc)
            if serial is not None:
                serial_walls.append(serial)
            _wall, doc, _exit = run_cli(app_root, jobs=jobs)
            parallel = analysis_wall(doc)
            if parallel is not None:
                parallel_walls.append(parallel)
    if not serial_walls or not parallel_walls:
        return None
    return min(serial_walls) / min(parallel_walls)


def gate_parallel(budgets: dict, reps: int) -> int:
    """Fail when any app's farm speedup falls below its budget floor."""
    floors: dict[str, float] = budgets.get("parallel_speedup_min", {})
    jobs = budgets.get("parallel_jobs", 4)
    if not floors:
        print("no parallel_speedup_min budgets configured; nothing to gate")
        return 0
    cpu_count = os.cpu_count() or 1
    if cpu_count < jobs:
        # same contract as the harness's `degraded` marker: an
        # undersized box cannot measure parallel speedup meaningfully
        print(
            f"WARNING: cpu_count {cpu_count} < parallel_jobs {jobs}; "
            "speedup is not measurable here — skipping the parallel gate"
        )
        return 0

    failures = []
    for app, floor in floors.items():
        print(
            f"measuring {app} speedup at --jobs {jobs} "
            f"(best of {reps}) ...",
            flush=True,
        )
        speedup = measure_speedup(app, jobs, reps)
        if speedup is None:
            print(f"  {app}: no run.pages_wall timer in output  FAIL")
            failures.append((app, 0.0, floor))
            continue
        verdict = "ok" if speedup >= floor else "FAIL"
        print(f"  {app}: {speedup:.2f}x  (floor {floor}x)  {verdict}")
        if speedup < floor:
            failures.append((app, speedup, floor))

    if failures:
        print(
            f"\nparallel gate FAILED: {len(failures)} app(s) below the "
            "speedup floor:",
            file=sys.stderr,
        )
        for app, speedup, floor in failures:
            print(f"  {app}: {speedup:.2f}x < {floor}x", file=sys.stderr)
        return 1
    print(f"parallel gate passed ({len(floors)} apps, --jobs {jobs})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--tolerance", type=float, default=None,
        help="allowed fraction over budget (default: from budgets.json)",
    )
    parser.add_argument(
        "--reps", type=int, default=3,
        help="measurements per app; the best (minimum) wall is compared",
    )
    parser.add_argument(
        "--update", action="store_true",
        help="re-measure and rewrite budgets.json instead of gating",
    )
    parser.add_argument(
        "--parallel", action="store_true",
        help=(
            "gate the analysis-farm speedup floors (parallel_speedup_min "
            "in budgets.json) instead of the serial wall budgets"
        ),
    )
    args = parser.parse_args(argv)

    budgets = json.loads(BUDGETS_PATH.read_text())
    if args.parallel:
        return gate_parallel(budgets, args.reps)
    tolerance = (
        args.tolerance if args.tolerance is not None
        else budgets.get("tolerance", 0.25)
    )
    headroom = budgets.get("calibration", {}).get("headroom_factor", 1.4)

    measured: dict[str, float] = {}
    for app in budgets["serial_wall_seconds"]:
        print(f"measuring {app} (best of {args.reps}) ...", flush=True)
        measured[app] = measure_app(app, args.reps)

    if args.update:
        budgets["serial_wall_seconds"] = {
            app: round(wall * headroom, 2) for app, wall in measured.items()
        }
        budgets.setdefault("calibration", {})["headroom_factor"] = headroom
        budgets["calibration"]["measured_wall_seconds"] = {
            app: round(wall, 3) for app, wall in measured.items()
        }
        BUDGETS_PATH.write_text(json.dumps(budgets, indent=2) + "\n")
        print(f"recalibrated {BUDGETS_PATH}")
        return 0

    failures = []
    for app, budget in budgets["serial_wall_seconds"].items():
        wall = measured[app]
        limit = budget * (1.0 + tolerance)
        verdict = "ok" if wall <= limit else "FAIL"
        print(
            f"  {app}: {wall:.3f}s  (budget {budget}s, "
            f"limit {limit:.3f}s)  {verdict}",
            flush=True,
        )
        if wall > limit:
            failures.append((app, wall, limit))

    if failures:
        print(
            f"\nbench gate FAILED: {len(failures)} app(s) over "
            f"{tolerance:.0%} past budget:",
            file=sys.stderr,
        )
        for app, wall, limit in failures:
            print(
                f"  {app}: {wall:.3f}s > {limit:.3f}s "
                f"(budget-relative {wall / (limit / (1 + tolerance)):.2f}x)",
                file=sys.stderr,
            )
        print(
            "If this regression is intentional, re-calibrate with "
            "`python benchmarks/bench_gate.py --update`.",
            file=sys.stderr,
        )
        return 1

    spread = statistics.median(measured.values())
    print(f"bench gate passed ({len(measured)} apps, median {spread:.3f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
