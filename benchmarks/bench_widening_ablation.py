"""Ablation: charset-closure vs. Mohri–Nederhof widening.

Widening trades precision for size.  The closure bound collapses a value
to ``closure*`` — constant size, but it forgets every literal skeleton,
so a widened-then-checked query loses its quote structure and gets
reported.  The Mohri–Nederhof approximation ([21]) keeps the skeleton at
roughly original size.  This bench measures both on the same loop-built
query value and asserts the precision difference.
"""

import pytest

from repro.analysis.absdom import GrammarBuilder
from repro.lang.grammar import Lit


def loop_built_query(builder: GrammarBuilder):
    """Q → "SELECT … WHERE " C;  C → C " AND x='v'" | "x='v'"
    (a WHERE clause grown in a loop — center/left recursive)."""
    g = builder.grammar
    cond = builder.fresh("cond")
    g.add(cond, (Lit("x='v'"),))
    g.add(cond, (cond, Lit(" AND x='v'")))
    query = builder.fresh("query")
    g.add(query, (Lit("SELECT a FROM t WHERE "), cond))
    return query


@pytest.mark.parametrize("strategy", ["closure", "mohri-nederhof"])
def test_widening_strategy(benchmark, strategy):
    def run():
        builder = GrammarBuilder(widen_strategy=strategy)
        from repro.analysis.values import StrVal

        query = StrVal(loop_built_query(builder))
        widened = builder.widen(query)
        return builder, widened

    builder, widened = benchmark(run)
    g = builder.grammar
    # both strategies over-approximate: the true strings remain
    assert g.generates(widened.nt, "SELECT a FROM t WHERE x='v'")
    garbage = "WHERE'SELECT x"
    if strategy == "closure":
        # closure forgets the skeleton: arbitrary rearrangements appear
        assert g.generates(widened.nt, garbage)
    else:
        # Mohri–Nederhof keeps it: the literal skeleton survives
        assert not g.generates(widened.nt, garbage)


def test_precision_consequence_for_policy(tmp_path):
    """After closure widening the quote structure is gone (the policy
    would have to report); after MN widening it survives verification."""
    from repro.analysis import quotes
    from repro.analysis.values import StrVal
    from repro.lang.intersect import intersection_is_empty

    verdicts = {}
    for strategy in ("closure", "mohri-nederhof"):
        builder = GrammarBuilder(widen_strategy=strategy)
        query = StrVal(loop_built_query(builder))
        widened = builder.widen(query)
        scope = builder.grammar.subgrammar(widened.nt)
        odd_free = intersection_is_empty(
            scope, widened.nt, quotes.odd_unescaped_quotes()
        )
        verdicts[strategy] = odd_free
    assert not verdicts["closure"]          # closure: odd-quote strings appear
    assert verdicts["mohri-nederhof"]       # MN: quote pairing survives
