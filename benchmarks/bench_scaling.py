"""§5.3 scalability benchmarks on the parametric app generator.

Claims exercised:

* analysis time grows roughly linearly in page count (each page is an
  independent ``main``),
* shared includes are re-analyzed per page (the paper's memoization
  remark) — include weight multiplies into total time,
* query-grammar size tracks *query-building code*, not application size
  (Table 1's Tiger-vs-e107 observation).
"""

import pytest

from repro.analysis.analyzer import analyze_project
from repro.corpus.generator import generate_app


@pytest.mark.parametrize("pages", [2, 8, 32])
def test_scaling_pages(benchmark, tmp_path, pages):
    app = generate_app(tmp_path / f"app{pages}", pages=pages, queries_per_page=2)
    report = benchmark.pedantic(
        analyze_project, args=(app, f"gen-{pages}"), rounds=1, iterations=1
    )
    assert len(report.hotspots) == pages * 2
    assert report.verified  # all inputs intval()d


@pytest.mark.parametrize("helpers", [2, 16, 64])
def test_scaling_shared_includes(benchmark, tmp_path, helpers):
    app = generate_app(
        tmp_path / f"helpers{helpers}", pages=6, queries_per_page=1, helpers=helpers
    )
    report = benchmark.pedantic(
        analyze_project, args=(app, f"helpers-{helpers}"), rounds=1, iterations=1
    )
    assert len(report.hotspots) == 6


def test_grammar_size_not_proportional_to_loc(tmp_path):
    """A big app with few queries yields a smaller query grammar than a
    small app with heavy query construction (no timing — a shape test)."""
    big_few = generate_app(
        tmp_path / "big", pages=12, queries_per_page=1, filler=400
    )
    small_many = generate_app(
        tmp_path / "small", pages=3, queries_per_page=10
    )
    report_big = analyze_project(big_few, "big")
    report_small = analyze_project(small_many, "small")
    assert report_big.lines > 2 * report_small.lines
    assert report_small.grammar_productions > report_big.grammar_productions
