"""Precision comparison against the taint-only baseline (§1.1 / §6.2).

Three scenario families, each analyzed by both tools:

* ``escaped-numeric`` — addslashes()d input in an unquoted context:
  a REAL bug; the grammar analysis reports it, the baseline's sanitizer
  whitelist hides it (false negative);
* ``anchored-regex`` — input constrained by ``^[0-9]+$`` before a quoted
  use: SAFE; the grammar analysis verifies it, the baseline reports it
  (false positive);
* ``raw`` — both tools report (sanity: agreement on the easy case).

The benchmark measures runtime of both analyses on the same pages and
asserts the precision table.
"""

import textwrap

import pytest

from repro.analysis.analyzer import analyze_page
from repro.baselines.taint_only import TaintOnlyAnalysis

SCENARIOS = {
    "raw": """\
        <?php
        $x = $_GET['x'];
        mysql_query("SELECT * FROM t WHERE a='$x'");
        """,
    "escaped-numeric": """\
        <?php
        $x = addslashes($_GET['x']);
        mysql_query("SELECT * FROM t WHERE id=$x");
        """,
    "anchored-regex": """\
        <?php
        $x = $_GET['x'];
        if (!preg_match('/^[0-9]+$/', $x)) { exit; }
        mysql_query("SELECT * FROM t WHERE id='$x'");
        """,
}

#: (grammar analysis reports?, taint baseline reports?, really a bug?)
EXPECTED = {
    "raw": (True, True, True),
    "escaped-numeric": (True, False, True),   # baseline false negative
    "anchored-regex": (False, True, False),   # baseline false positive
}


def write_page(tmp_path, name, source):
    page_dir = tmp_path / name
    page_dir.mkdir(exist_ok=True)
    (page_dir / "page.php").write_text(textwrap.dedent(source))
    return page_dir


@pytest.mark.parametrize("scenario", list(SCENARIOS))
def test_grammar_analysis(benchmark, tmp_path, scenario):
    page_dir = write_page(tmp_path, scenario, SCENARIOS[scenario])

    def run():
        reports, _ = analyze_page(page_dir, "page.php")
        return any(not r.verified for r in reports)

    reported = benchmark(run)
    assert reported == EXPECTED[scenario][0]


@pytest.mark.parametrize("scenario", list(SCENARIOS))
def test_taint_baseline(benchmark, tmp_path, scenario):
    page_dir = write_page(tmp_path, scenario, SCENARIOS[scenario])

    def run():
        result = TaintOnlyAnalysis(page_dir).analyze_file("page.php")
        return bool(result.findings)

    reported = benchmark(run)
    assert reported == EXPECTED[scenario][1]


def test_precision_table(tmp_path):
    """The full 2×3 agreement/divergence table in one assertion."""
    rows = {}
    for scenario, source in SCENARIOS.items():
        page_dir = write_page(tmp_path, scenario, source)
        reports, _ = analyze_page(page_dir, "page.php")
        grammar_reports = any(not r.verified for r in reports)
        taint_reports = bool(
            TaintOnlyAnalysis(page_dir).analyze_file("page.php").findings
        )
        rows[scenario] = (grammar_reports, taint_reports)
    for scenario, (grammar_reports, taint_reports) in rows.items():
        expected_grammar, expected_taint, is_bug = EXPECTED[scenario]
        assert grammar_reports == expected_grammar, scenario
        assert taint_reports == expected_taint, scenario
        # headline: the grammar analysis is exactly right on all three
        assert grammar_reports == is_bug, scenario
